//! The instruction set.
//!
//! Instructions come in two layers:
//!
//! * [`Op`] — straight-line operations (arithmetic, field access, calls,
//!   allocation). These are shared verbatim with the optimizer IR in
//!   `dchm-ir`, so optimization passes and the evaluator agree on semantics.
//! * [`Instr`] — an `Op` or a control-flow instruction (`Jmp`, `BrIf`, `Ret`)
//!   with [`Label`] targets. Method bodies are `Vec<Instr>`.
//!
//! The three `Notify*` pseudo-ops and the [`Op::GuardState`] pseudo-op are
//! never written by frontends; the VM's compiler inserts the notifies at
//! *patch points* (state-field assignments and constructor exits) when a
//! mutation plan is installed, mirroring how the paper patches compiled
//! code at those sites (Figure 4), and inserts state guards into
//! specialized method bodies so a frame can deoptimize to baseline code
//! when its state assumptions break mid-method.

use crate::ids::{ClassId, FieldId, Label, MethodId, Reg, SelectorId};
use crate::value::{CmpOp, ElemKind, Value};
use serde::{Deserialize, Serialize};

/// Integer binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IBinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (traps on divide-by-zero; `MIN / -1` wraps).
    Div,
    /// Remainder (traps on divide-by-zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (mod 64).
    Shl,
    /// Arithmetic shift right (mod 64).
    Shr,
}

impl IBinOp {
    /// Evaluates the operator; `None` for division/remainder by zero (which
    /// the VM turns into a trap, modeling `ArithmeticException`).
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            IBinOp::Add => a.wrapping_add(b),
            IBinOp::Sub => a.wrapping_sub(b),
            IBinOp::Mul => a.wrapping_mul(b),
            IBinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            IBinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            IBinOp::And => a & b,
            IBinOp::Or => a | b,
            IBinOp::Xor => a ^ b,
            IBinOp::Shl => a.wrapping_shl(b as u32 & 63),
            IBinOp::Shr => a.wrapping_shr(b as u32 & 63),
        })
    }

    /// True for commutative operators.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            IBinOp::Add | IBinOp::Mul | IBinOp::And | IBinOp::Or | IBinOp::Xor
        )
    }
}

/// Floating-point binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (IEEE: yields inf/NaN, never traps).
    Div,
}

impl DBinOp {
    /// Evaluates the operator with IEEE semantics.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            DBinOp::Add => a + b,
            DBinOp::Sub => a - b,
            DBinOp::Mul => a * b,
            DBinOp::Div => a / b,
        }
    }
}

/// Built-in operations that would be native methods in a real JVM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IntrinsicKind {
    /// Append an integer to the VM output log. One `int` argument.
    PrintInt,
    /// Append a float to the VM output log. One `double` argument.
    PrintDouble,
    /// Append a character (code point in an `int`) to the VM output log.
    PrintChar,
    /// Fold an integer into the VM's output checksum (cheap observable sink
    /// that keeps computations alive without log volume). One `int` argument.
    SinkInt,
    /// Fold a double's bit pattern into the output checksum. One `double` argument.
    SinkDouble,
    /// `dst = sqrt(a)`. One `double` argument, `double` result.
    DSqrt,
    /// `dst = |a|` for doubles.
    DAbs,
    /// `dst = |a|` for ints (wrapping at `i64::MIN`).
    IAbs,
    /// `dst = min(a, b)` for ints.
    IMin,
    /// `dst = max(a, b)` for ints.
    IMax,
}

impl IntrinsicKind {
    /// True if the intrinsic has an externally observable effect (must never
    /// be dead-code-eliminated).
    pub fn has_effect(self) -> bool {
        matches!(
            self,
            IntrinsicKind::PrintInt
                | IntrinsicKind::PrintDouble
                | IntrinsicKind::PrintChar
                | IntrinsicKind::SinkInt
                | IntrinsicKind::SinkDouble
        )
    }
}

/// A straight-line operation. See the module docs for the role split between
/// `Op` and [`Instr`].
///
/// Field conventions (documented here once rather than per variant): `dst`
/// is the defined register, `a`/`b` are operands, `obj` is a receiver or
/// array reference, `src` is a stored value.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Op {
    /// `dst = val`
    ConstI { dst: Reg, val: i64 },
    /// `dst = val`
    ConstD { dst: Reg, val: f64 },
    /// `dst = null`
    ConstNull { dst: Reg },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b` (integers)
    IBin { op: IBinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = -a` (integer, wrapping)
    INeg { dst: Reg, a: Reg },
    /// `dst = a <op> b` (doubles)
    DBin { op: DBinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = -a` (double)
    DNeg { dst: Reg, a: Reg },
    /// `dst = (double) a`
    I2D { dst: Reg, a: Reg },
    /// `dst = (long) a` (truncating; saturates at i64 bounds, NaN -> 0)
    D2I { dst: Reg, a: Reg },
    /// `dst = (a <op> b) ? 1 : 0` (integers)
    ICmp { op: CmpOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = (a <op> b) ? 1 : 0` (doubles, IEEE)
    DCmp { op: CmpOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = (a == b) ? 1 : 0` for references (null-safe)
    RefEq { dst: Reg, a: Reg, b: Reg },
    /// `dst = new class(...uninitialized...)`; a constructor must follow.
    New { dst: Reg, class: ClassId },
    /// `dst = obj.field`
    GetField { dst: Reg, obj: Reg, field: FieldId },
    /// `obj.field = src`
    PutField { obj: Reg, field: FieldId, src: Reg },
    /// `dst = Class.field`
    GetStatic { dst: Reg, field: FieldId },
    /// `Class.field = src`
    PutStatic { field: FieldId, src: Reg },
    /// Virtual dispatch on the receiver's run-time class (via its TIB).
    CallVirtual {
        /// Destination for the return value, if the callee returns one.
        dst: Option<Reg>,
        /// Method selector; resolved through the receiver's vtable.
        sel: SelectorId,
        /// Receiver register.
        obj: Reg,
        /// Argument registers (excluding the receiver).
        args: Vec<Reg>,
    },
    /// Statically-bound instance call (`invokespecial`): constructors,
    /// private methods, `super` calls. Bound via the *declaring class*, never
    /// through the object's (possibly special) TIB — see paper Sec. 3.2.3.
    CallSpecial {
        /// Destination for the return value, if any.
        dst: Option<Reg>,
        /// Class whose hierarchy statically resolves the target.
        class: ClassId,
        /// Method selector.
        sel: SelectorId,
        /// Receiver register.
        obj: Reg,
        /// Argument registers (excluding the receiver).
        args: Vec<Reg>,
    },
    /// Static method call through the JTOC.
    CallStatic {
        /// Destination for the return value, if any.
        dst: Option<Reg>,
        /// Target method (static methods are directly named).
        method: MethodId,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// Interface dispatch through the IMT.
    CallInterface {
        /// Destination for the return value, if any.
        dst: Option<Reg>,
        /// Interface whose method is invoked.
        iface: ClassId,
        /// Method selector.
        sel: SelectorId,
        /// Receiver register.
        obj: Reg,
        /// Argument registers (excluding the receiver).
        args: Vec<Reg>,
    },
    /// `dst = (obj instanceof class) ? 1 : 0` (null is not an instance).
    InstanceOf { dst: Reg, obj: Reg, class: ClassId },
    /// Trap if `obj` is non-null and not an instance of `class`.
    CheckCast { obj: Reg, class: ClassId },
    /// `dst = new kind[len]`
    NewArr { dst: Reg, kind: ElemKind, len: Reg },
    /// `dst = arr[idx]`
    ALoad { dst: Reg, arr: Reg, idx: Reg },
    /// `arr[idx] = src`
    AStore { arr: Reg, idx: Reg, src: Reg },
    /// `dst = arr.length`
    ALen { dst: Reg, arr: Reg },
    /// Built-in operation; see [`IntrinsicKind`].
    Intrinsic {
        /// Result register for value-producing intrinsics.
        dst: Option<Reg>,
        /// Which intrinsic.
        kind: IntrinsicKind,
        /// Arguments.
        args: Vec<Reg>,
    },
    /// Mutation patch point: a constructor of a mutable class is returning.
    /// Inserted by the VM compiler, never by frontends.
    NotifyCtorExit { obj: Reg, class: ClassId },
    /// Mutation patch point: an instance state field was just stored.
    NotifyInstStore { obj: Reg, class: ClassId, field: FieldId },
    /// Mutation patch point: a static state field was just stored.
    NotifyStaticStore { field: FieldId },
    /// State guard in specialized code: checks that every listed binding
    /// still holds and otherwise deoptimizes the frame onto the method's
    /// baseline code version (entry `guard` of its deopt side table).
    /// Inserted by the VM compiler, never by frontends.
    GuardState {
        /// Receiver whose instance bindings are checked (`None` when only
        /// statics are bound).
        obj: Option<Reg>,
        /// Instance-field bindings to re-check, sorted by field id.
        instance: Vec<(FieldId, Value)>,
        /// Static-field bindings to re-check, sorted by field id.
        statics: Vec<(FieldId, Value)>,
        /// Index into the compiled method's deopt side table.
        guard: u32,
        /// Registers `0..live_prefix` seed the baseline frame on deopt;
        /// they are reported as uses so optimization passes keep their
        /// definitions alive and unmoved.
        live_prefix: u16,
    },
}

impl Op {
    /// The register this op defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Op::ConstI { dst, .. }
            | Op::ConstD { dst, .. }
            | Op::ConstNull { dst }
            | Op::Mov { dst, .. }
            | Op::IBin { dst, .. }
            | Op::INeg { dst, .. }
            | Op::DBin { dst, .. }
            | Op::DNeg { dst, .. }
            | Op::I2D { dst, .. }
            | Op::D2I { dst, .. }
            | Op::ICmp { dst, .. }
            | Op::DCmp { dst, .. }
            | Op::RefEq { dst, .. }
            | Op::New { dst, .. }
            | Op::GetField { dst, .. }
            | Op::GetStatic { dst, .. }
            | Op::InstanceOf { dst, .. }
            | Op::NewArr { dst, .. }
            | Op::ALoad { dst, .. }
            | Op::ALen { dst, .. } => Some(dst),
            Op::CallVirtual { dst, .. }
            | Op::CallSpecial { dst, .. }
            | Op::CallStatic { dst, .. }
            | Op::CallInterface { dst, .. }
            | Op::Intrinsic { dst, .. } => dst,
            Op::PutField { .. }
            | Op::PutStatic { .. }
            | Op::CheckCast { .. }
            | Op::AStore { .. }
            | Op::NotifyCtorExit { .. }
            | Op::NotifyInstStore { .. }
            | Op::NotifyStaticStore { .. }
            | Op::GuardState { .. } => None,
        }
    }

    /// Calls `f` for every register this op reads.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        match self {
            Op::ConstI { .. } | Op::ConstD { .. } | Op::ConstNull { .. } | Op::New { .. } => {}
            Op::Mov { src, .. } => f(*src),
            Op::IBin { a, b, .. } | Op::DBin { a, b, .. } => {
                f(*a);
                f(*b);
            }
            Op::INeg { a, .. }
            | Op::DNeg { a, .. }
            | Op::I2D { a, .. }
            | Op::D2I { a, .. } => f(*a),
            Op::ICmp { a, b, .. } | Op::DCmp { a, b, .. } | Op::RefEq { a, b, .. } => {
                f(*a);
                f(*b);
            }
            Op::GetField { obj, .. } => f(*obj),
            Op::PutField { obj, src, .. } => {
                f(*obj);
                f(*src);
            }
            Op::GetStatic { .. } => {}
            Op::PutStatic { src, .. } => f(*src),
            Op::CallVirtual { obj, args, .. }
            | Op::CallSpecial { obj, args, .. }
            | Op::CallInterface { obj, args, .. } => {
                f(*obj);
                for a in args {
                    f(*a);
                }
            }
            Op::CallStatic { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Op::InstanceOf { obj, .. } | Op::CheckCast { obj, .. } => f(*obj),
            Op::NewArr { len, .. } => f(*len),
            Op::ALoad { arr, idx, .. } => {
                f(*arr);
                f(*idx);
            }
            Op::AStore { arr, idx, src } => {
                f(*arr);
                f(*idx);
                f(*src);
            }
            Op::ALen { arr, .. } => f(*arr),
            Op::Intrinsic { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Op::NotifyCtorExit { obj, .. } | Op::NotifyInstStore { obj, .. } => f(*obj),
            Op::NotifyStaticStore { .. } => {}
            Op::GuardState {
                obj, live_prefix, ..
            } => {
                if let Some(o) = obj {
                    f(*o);
                }
                // The deopt prefix is live here: baseline resumes with
                // these registers copied verbatim, so their definitions
                // must survive every pass.
                for r in 0..*live_prefix {
                    f(Reg(r));
                }
            }
        }
    }

    /// Rewrites every register (defs and uses) through `f`. Used by the
    /// inliner to renumber callee registers into the caller frame.
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::ConstI { dst, .. } | Op::ConstD { dst, .. } | Op::ConstNull { dst } => {
                *dst = f(*dst)
            }
            Op::Mov { dst, src } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            Op::IBin { dst, a, b, .. } | Op::DBin { dst, a, b, .. } => {
                *dst = f(*dst);
                *a = f(*a);
                *b = f(*b);
            }
            Op::INeg { dst, a }
            | Op::DNeg { dst, a }
            | Op::I2D { dst, a }
            | Op::D2I { dst, a } => {
                *dst = f(*dst);
                *a = f(*a);
            }
            Op::ICmp { dst, a, b, .. } | Op::DCmp { dst, a, b, .. } | Op::RefEq { dst, a, b } => {
                *dst = f(*dst);
                *a = f(*a);
                *b = f(*b);
            }
            Op::New { dst, .. } => *dst = f(*dst),
            Op::GetField { dst, obj, .. } => {
                *dst = f(*dst);
                *obj = f(*obj);
            }
            Op::PutField { obj, src, .. } => {
                *obj = f(*obj);
                *src = f(*src);
            }
            Op::GetStatic { dst, .. } => *dst = f(*dst),
            Op::PutStatic { src, .. } => *src = f(*src),
            Op::CallVirtual { dst, obj, args, .. }
            | Op::CallSpecial { dst, obj, args, .. }
            | Op::CallInterface { dst, obj, args, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
                *obj = f(*obj);
                for a in args {
                    *a = f(*a);
                }
            }
            Op::CallStatic { dst, args, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Op::InstanceOf { dst, obj, .. } => {
                *dst = f(*dst);
                *obj = f(*obj);
            }
            Op::CheckCast { obj, .. } => *obj = f(*obj),
            Op::NewArr { dst, len, .. } => {
                *dst = f(*dst);
                *len = f(*len);
            }
            Op::ALoad { dst, arr, idx } => {
                *dst = f(*dst);
                *arr = f(*arr);
                *idx = f(*idx);
            }
            Op::AStore { arr, idx, src } => {
                *arr = f(*arr);
                *idx = f(*idx);
                *src = f(*src);
            }
            Op::ALen { dst, arr } => {
                *dst = f(*dst);
                *arr = f(*arr);
            }
            Op::Intrinsic { dst, args, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Op::NotifyCtorExit { obj, .. } | Op::NotifyInstStore { obj, .. } => *obj = f(*obj),
            Op::NotifyStaticStore { .. } => {}
            // The prefix registers are positional (frame-relative) and must
            // stay fixed; guards only ever live in an outermost compiled
            // function, never in inlined callee bodies.
            Op::GuardState { obj, .. } => {
                if let Some(o) = obj {
                    *o = f(*o);
                }
            }
        }
    }

    /// Rewrites only the *used* registers through `f`, leaving the defined
    /// register untouched. Used by copy propagation.
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::ConstI { .. } | Op::ConstD { .. } | Op::ConstNull { .. } | Op::New { .. } => {}
            Op::Mov { src, .. } => *src = f(*src),
            Op::IBin { a, b, .. } | Op::DBin { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::INeg { a, .. }
            | Op::DNeg { a, .. }
            | Op::I2D { a, .. }
            | Op::D2I { a, .. } => *a = f(*a),
            Op::ICmp { a, b, .. } | Op::DCmp { a, b, .. } | Op::RefEq { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::GetField { obj, .. } => *obj = f(*obj),
            Op::PutField { obj, src, .. } => {
                *obj = f(*obj);
                *src = f(*src);
            }
            Op::GetStatic { .. } => {}
            Op::PutStatic { src, .. } => *src = f(*src),
            Op::CallVirtual { obj, args, .. }
            | Op::CallSpecial { obj, args, .. }
            | Op::CallInterface { obj, args, .. } => {
                *obj = f(*obj);
                for a in args {
                    *a = f(*a);
                }
            }
            Op::CallStatic { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Op::InstanceOf { obj, .. } | Op::CheckCast { obj, .. } => *obj = f(*obj),
            Op::NewArr { len, .. } => *len = f(*len),
            Op::ALoad { arr, idx, .. } => {
                *arr = f(*arr);
                *idx = f(*idx);
            }
            Op::AStore { arr, idx, src } => {
                *arr = f(*arr);
                *idx = f(*idx);
                *src = f(*src);
            }
            Op::ALen { arr, .. } => *arr = f(*arr),
            Op::Intrinsic { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Op::NotifyCtorExit { obj, .. } | Op::NotifyInstStore { obj, .. } => *obj = f(*obj),
            Op::NotifyStaticStore { .. } => {}
            // Keep the receiver stable too: rewriting it to a copy source
            // could outlive the copy in ways the deopt remap cannot see.
            Op::GuardState { .. } => {}
        }
    }

    /// True if removing this op (when its result is unused) would change
    /// observable behaviour: stores, calls, allocation, traps, patch points.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Op::PutField { .. }
            | Op::PutStatic { .. }
            | Op::CallVirtual { .. }
            | Op::CallSpecial { .. }
            | Op::CallStatic { .. }
            | Op::CallInterface { .. }
            | Op::CheckCast { .. }
            | Op::AStore { .. }
            | Op::NotifyCtorExit { .. }
            | Op::NotifyInstStore { .. }
            | Op::NotifyStaticStore { .. }
            | Op::GuardState { .. } => true,
            // Division can trap.
            Op::IBin { op, .. } => matches!(op, IBinOp::Div | IBinOp::Rem),
            // Loads can trap on null / out-of-bounds; allocation can OOM/GC.
            Op::New { .. }
            | Op::NewArr { .. }
            | Op::GetField { .. }
            | Op::ALoad { .. }
            | Op::ALen { .. } => true,
            Op::Intrinsic { kind, .. } => kind.has_effect(),
            _ => false,
        }
    }

    /// True for any of the call ops.
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            Op::CallVirtual { .. }
                | Op::CallSpecial { .. }
                | Op::CallStatic { .. }
                | Op::CallInterface { .. }
        )
    }
}

/// One bytecode instruction: an [`Op`] or control flow.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Instr {
    /// A straight-line operation.
    Op(Op),
    /// Unconditional jump.
    Jmp(Label),
    /// Branch to `target` if `cond != 0`, else fall through.
    BrIf {
        /// Condition register (an `int`, 0 = false).
        cond: Reg,
        /// Taken target.
        target: Label,
    },
    /// Return, with an optional value.
    Ret(Option<Reg>),
}

impl Instr {
    /// True if control cannot fall through this instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jmp(_) | Instr::Ret(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibinop_eval_basics() {
        assert_eq!(IBinOp::Add.eval(2, 3), Some(5));
        assert_eq!(IBinOp::Div.eval(7, 2), Some(3));
        assert_eq!(IBinOp::Div.eval(7, 0), None);
        assert_eq!(IBinOp::Rem.eval(7, 0), None);
        assert_eq!(IBinOp::Shl.eval(1, 65), Some(2)); // shift count mod 64
        assert_eq!(IBinOp::Add.eval(i64::MAX, 1), Some(i64::MIN)); // wrapping
    }

    #[test]
    fn dbinop_eval_ieee() {
        assert_eq!(DBinOp::Div.eval(1.0, 0.0), f64::INFINITY);
        assert!(DBinOp::Div.eval(0.0, 0.0).is_nan());
    }

    #[test]
    fn defs_and_uses() {
        let op = Op::IBin {
            op: IBinOp::Add,
            dst: Reg(2),
            a: Reg(0),
            b: Reg(1),
        };
        assert_eq!(op.def(), Some(Reg(2)));
        let mut uses = vec![];
        op.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(0), Reg(1)]);
    }

    #[test]
    fn call_uses_include_receiver_and_args() {
        let op = Op::CallVirtual {
            dst: Some(Reg(5)),
            sel: SelectorId(0),
            obj: Reg(1),
            args: vec![Reg(2), Reg(3)],
        };
        let mut uses = vec![];
        op.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(1), Reg(2), Reg(3)]);
        assert_eq!(op.def(), Some(Reg(5)));
        assert!(op.is_call());
        assert!(op.has_side_effect());
    }

    #[test]
    fn map_regs_renumbers_everything() {
        let mut op = Op::AStore {
            arr: Reg(0),
            idx: Reg(1),
            src: Reg(2),
        };
        op.map_regs(|r| Reg(r.0 + 10));
        assert_eq!(
            op,
            Op::AStore {
                arr: Reg(10),
                idx: Reg(11),
                src: Reg(12)
            }
        );
    }

    #[test]
    fn side_effects_classified() {
        assert!(!Op::ConstI {
            dst: Reg(0),
            val: 1
        }
        .has_side_effect());
        assert!(Op::IBin {
            op: IBinOp::Div,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2)
        }
        .has_side_effect());
        assert!(!Op::IBin {
            op: IBinOp::Add,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2)
        }
        .has_side_effect());
        assert!(Op::Intrinsic {
            dst: None,
            kind: IntrinsicKind::SinkInt,
            args: vec![Reg(0)]
        }
        .has_side_effect());
        assert!(!Op::Intrinsic {
            dst: Some(Reg(1)),
            kind: IntrinsicKind::DSqrt,
            args: vec![Reg(0)]
        }
        .has_side_effect());
    }

    #[test]
    fn terminators() {
        assert!(Instr::Ret(None).is_terminator());
        assert!(Instr::Jmp(Label(0)).is_terminator());
        assert!(!Instr::BrIf {
            cond: Reg(0),
            target: Label(0)
        }
        .is_terminator());
    }
}
