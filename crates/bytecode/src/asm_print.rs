//! Printing programs back to assembly text — the inverse of
//! [`crate::asm::assemble`]. Together they give a complete textual
//! save/load path for programs: `assemble(print_asm(p))` reproduces `p`'s
//! structure and semantics.

use crate::class::{MethodDef, MethodKind, Visibility};
use crate::ids::{ClassId, FieldId, MethodId};
use crate::instr::{DBinOp, IBinOp, Instr, IntrinsicKind, Op};
use crate::program::Program;
use crate::value::{CmpOp, ElemKind, Ty, Value};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders a whole program as assembly text.
///
/// Programs containing compiler-inserted `Notify*` pseudo-ops cannot be
/// represented (they are rejected by the verifier on re-assembly); frontend
/// programs never contain them.
pub fn print_asm(p: &Program) -> String {
    let mut out = String::new();
    for (ci, c) in p.classes.iter().enumerate() {
        let id = ClassId::from_index(ci);
        if c.is_interface {
            let _ = write!(out, ".interface {}", c.name);
        } else {
            let _ = write!(out, ".class {}", c.name);
        }
        if let Some(sup) = c.super_class {
            let _ = write!(out, " extends {}", p.class(sup).name);
        }
        if !c.interfaces.is_empty() {
            let _ = write!(out, " implements");
            for &i in &c.interfaces {
                let _ = write!(out, " {}", p.class(i).name);
            }
        }
        out.push('\n');
        for &f in &c.fields {
            let fd = p.field(f);
            let dir = if fd.is_static { ".sfield" } else { ".field" };
            let _ = write!(out, "{dir} {} {}", fd.name, ty_str(p, fd.ty));
            if fd.visibility == Visibility::Private {
                out.push_str(" private");
            }
            if fd.is_static && !matches!(fd.initial, Value::Null) {
                let _ = write!(out, " {}", value_str(fd.initial));
            }
            out.push('\n');
        }
        for &m in &c.methods {
            print_method(p, m, &mut out);
        }
        out.push_str(".end\n\n");
        let _ = id;
    }
    if let Some(entry) = p.entry {
        let md = p.method(entry);
        let _ = writeln!(out, ".entry {}.{}", p.class(md.owner).name, md.name);
    }
    out
}

fn print_method(p: &Program, mid: MethodId, out: &mut String) {
    let md = p.method(mid);
    match md.kind {
        MethodKind::Abstract => {
            let _ = write!(out, ".amethod {} {}", md.name, ret_str(p, md));
            for &t in &md.sig.params {
                let _ = write!(out, " {}", ty_str(p, t));
            }
            out.push('\n');
            return;
        }
        MethodKind::Constructor => {
            let _ = write!(out, ".ctor");
        }
        MethodKind::Static => {
            let _ = write!(out, ".smethod {} {}", md.name, ret_str(p, md));
        }
        MethodKind::Instance => {
            let _ = write!(out, ".method {} {}", md.name, ret_str(p, md));
        }
    }
    for &t in &md.sig.params {
        let _ = write!(out, " {}", ty_str(p, t));
    }
    if md.visibility == Visibility::Private {
        out.push_str(" private");
    }
    out.push('\n');

    // Branch targets get labels.
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for instr in &md.code {
        match instr {
            Instr::Jmp(t) => {
                targets.insert(t.index());
            }
            Instr::BrIf { target, .. } => {
                targets.insert(target.index());
            }
            _ => {}
        }
    }
    for (i, instr) in md.code.iter().enumerate() {
        if targets.contains(&i) {
            let _ = writeln!(out, "L{i}:");
        }
        match instr {
            Instr::Op(op) => {
                let _ = writeln!(out, "  {}", op_str(p, op));
            }
            Instr::Jmp(t) => {
                let _ = writeln!(out, "  jmp L{}", t.index());
            }
            Instr::BrIf { cond, target } => {
                let _ = writeln!(out, "  brif r{}, L{}", cond.0, target.index());
            }
            Instr::Ret(Some(r)) => {
                let _ = writeln!(out, "  ret r{}", r.0);
            }
            Instr::Ret(None) => {
                let _ = writeln!(out, "  ret");
            }
        }
    }
    out.push_str(".end_method\n");
}

fn ret_str(p: &Program, md: &MethodDef) -> String {
    match md.sig.ret {
        None => "void".into(),
        Some(t) => ty_str(p, t),
    }
}

fn ty_str(p: &Program, t: Ty) -> String {
    match t {
        Ty::Int => "int".into(),
        Ty::Double => "double".into(),
        Ty::Arr(ElemKind::Int) => "int[]".into(),
        Ty::Arr(ElemKind::Double) => "double[]".into(),
        Ty::Arr(ElemKind::Ref) => "ref[]".into(),
        Ty::Ref(c) => p.class(c).name.clone(),
    }
}

fn value_str(v: Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Double(d) => format!("{d:?}"),
        Value::Null => "null".into(),
        Value::Ref(_) => "null".into(),
    }
}

fn cmp_str(c: CmpOp) -> &'static str {
    match c {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn field_ref(p: &Program, f: FieldId) -> String {
    let fd = p.field(f);
    format!("{}.{}", p.class(fd.owner).name, fd.name)
}

fn regs_str(rs: &[crate::ids::Reg]) -> String {
    rs.iter()
        .map(|r| format!("r{}", r.0))
        .collect::<Vec<_>>()
        .join(", ")
}

#[allow(clippy::too_many_lines)]
fn op_str(p: &Program, op: &Op) -> String {
    match op {
        Op::ConstI { dst, val } => format!("consti r{}, {val}", dst.0),
        Op::ConstD { dst, val } => format!("constd r{}, {val:?}", dst.0),
        Op::ConstNull { dst } => format!("constnull r{}", dst.0),
        Op::Mov { dst, src } => format!("mov r{}, r{}", dst.0, src.0),
        Op::IBin { op, dst, a, b } => {
            let name = match op {
                IBinOp::Add => "iadd",
                IBinOp::Sub => "isub",
                IBinOp::Mul => "imul",
                IBinOp::Div => "idiv",
                IBinOp::Rem => "irem",
                IBinOp::And => "iand",
                IBinOp::Or => "ior",
                IBinOp::Xor => "ixor",
                IBinOp::Shl => "ishl",
                IBinOp::Shr => "ishr",
            };
            format!("{name} r{}, r{}, r{}", dst.0, a.0, b.0)
        }
        Op::INeg { dst, a } => format!("ineg r{}, r{}", dst.0, a.0),
        Op::DBin { op, dst, a, b } => {
            let name = match op {
                DBinOp::Add => "dadd",
                DBinOp::Sub => "dsub",
                DBinOp::Mul => "dmul",
                DBinOp::Div => "ddiv",
            };
            format!("{name} r{}, r{}, r{}", dst.0, a.0, b.0)
        }
        Op::DNeg { dst, a } => format!("dneg r{}, r{}", dst.0, a.0),
        Op::I2D { dst, a } => format!("i2d r{}, r{}", dst.0, a.0),
        Op::D2I { dst, a } => format!("d2i r{}, r{}", dst.0, a.0),
        Op::ICmp { op, dst, a, b } => {
            format!("icmp {}, r{}, r{}, r{}", cmp_str(*op), dst.0, a.0, b.0)
        }
        Op::DCmp { op, dst, a, b } => {
            format!("dcmp {}, r{}, r{}, r{}", cmp_str(*op), dst.0, a.0, b.0)
        }
        Op::RefEq { dst, a, b } => format!("refeq r{}, r{}, r{}", dst.0, a.0, b.0),
        Op::New { dst, class } => format!("new r{}, {}", dst.0, p.class(*class).name),
        Op::GetField { dst, obj, field } => {
            format!("getfield r{}, r{}, {}", dst.0, obj.0, field_ref(p, *field))
        }
        Op::PutField { obj, field, src } => {
            format!("putfield r{}, {}, r{}", obj.0, field_ref(p, *field), src.0)
        }
        Op::GetStatic { dst, field } => {
            format!("getstatic r{}, {}", dst.0, field_ref(p, *field))
        }
        Op::PutStatic { field, src } => {
            format!("putstatic {}, r{}", field_ref(p, *field), src.0)
        }
        Op::CallVirtual { dst, sel, obj, args } => {
            let name = p.selector_name(*sel);
            match dst {
                Some(d) => {
                    if args.is_empty() {
                        format!("callvirtual r{}, r{}, {name}", d.0, obj.0)
                    } else {
                        format!("callvirtual r{}, r{}, {name}, {}", d.0, obj.0, regs_str(args))
                    }
                }
                None => {
                    if args.is_empty() {
                        format!("callvirtual_v r{}, {name}", obj.0)
                    } else {
                        format!("callvirtual_v r{}, {name}, {}", obj.0, regs_str(args))
                    }
                }
            }
        }
        Op::CallSpecial {
            dst,
            class,
            sel,
            obj,
            args,
        } => {
            let cname = &p.class(*class).name;
            let mname = p.selector_name(*sel);
            if mname == crate::builder::CTOR_NAME {
                if args.is_empty() {
                    return format!("callctor r{}, {cname}", obj.0);
                }
                return format!("callctor r{}, {cname}, {}", obj.0, regs_str(args));
            }
            let tail = if args.is_empty() {
                String::new()
            } else {
                format!(" {}", regs_str(args))
            };
            match dst {
                Some(d) => format!("callspecial r{}, {cname}, {mname}, r{}{tail}", d.0, obj.0),
                None => format!("callspecial_v {cname}, {mname}, r{}{tail}", obj.0),
            }
        }
        Op::CallStatic { dst, method, args } => {
            let md = p.method(*method);
            let target = format!("{}.{}", p.class(md.owner).name, md.name);
            let tail = if args.is_empty() {
                String::new()
            } else {
                format!(", {}", regs_str(args))
            };
            match dst {
                Some(d) => format!("callstatic r{}, {target}{tail}", d.0),
                None => format!("callstatic_v {target}{tail}"),
            }
        }
        Op::CallInterface {
            dst,
            iface,
            sel,
            obj,
            args,
        } => {
            let iname = &p.class(*iface).name;
            let mname = p.selector_name(*sel);
            let tail = if args.is_empty() {
                String::new()
            } else {
                format!(", {}", regs_str(args))
            };
            match dst {
                Some(d) => format!("callinterface r{}, {iname}, {mname}, r{}{tail}", d.0, obj.0),
                None => format!("callinterface_v {iname}, {mname}, r{}{tail}", obj.0),
            }
        }
        Op::InstanceOf { dst, obj, class } => {
            format!("instanceof r{}, r{}, {}", dst.0, obj.0, p.class(*class).name)
        }
        Op::CheckCast { obj, class } => {
            format!("checkcast r{}, {}", obj.0, p.class(*class).name)
        }
        Op::NewArr { dst, kind, len } => {
            let k = match kind {
                ElemKind::Int => "int",
                ElemKind::Double => "double",
                ElemKind::Ref => "ref",
            };
            format!("newarr r{}, {k}, r{}", dst.0, len.0)
        }
        Op::ALoad { dst, arr, idx } => format!("aload r{}, r{}, r{}", dst.0, arr.0, idx.0),
        Op::AStore { arr, idx, src } => format!("astore r{}, r{}, r{}", arr.0, idx.0, src.0),
        Op::ALen { dst, arr } => format!("alen r{}, r{}", dst.0, arr.0),
        Op::Intrinsic { dst, kind, args } => {
            let (name, needs_dst) = match kind {
                IntrinsicKind::PrintInt => ("printint", false),
                IntrinsicKind::PrintDouble => ("printdouble", false),
                IntrinsicKind::PrintChar => ("printchar", false),
                IntrinsicKind::SinkInt => ("sinkint", false),
                IntrinsicKind::SinkDouble => ("sinkdouble", false),
                IntrinsicKind::DSqrt => ("dsqrt", true),
                IntrinsicKind::DAbs => ("dabs", true),
                IntrinsicKind::IAbs => ("iabs", true),
                IntrinsicKind::IMin => ("imin", true),
                IntrinsicKind::IMax => ("imax", true),
            };
            if needs_dst {
                format!(
                    "{name} r{}, {}",
                    dst.map(|d| d.0).unwrap_or(0),
                    regs_str(args)
                )
            } else {
                format!("{name} {}", regs_str(args))
            }
        }
        Op::NotifyCtorExit { .. }
        | Op::NotifyInstStore { .. }
        | Op::NotifyStaticStore { .. }
        | Op::GuardState { .. } => {
            // Compiler-internal; never present in frontend programs.
            "; <compiler pseudo-op: not printable>".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    const SRC: &str = r#"
.interface Greeter
.amethod greet int ()
.end

.class Base
.field x int
.sfield counter int 7
.ctor (int)
  putfield r0, Base.x, r1
  ret
.end_method
.method getx int ()
  getfield r2, r0, Base.x
  ret r2
.end_method
.end

.class Derived extends Base implements Greeter
.ctor (int)
  callspecial_v Base <init> r0 r1
  ret
.end_method
.method greet int ()
  callvirtual r2, r0, getx
  getstatic r3, Base.counter
  iadd r2, r2, r3
  ret r2
.end_method
.end

.class Main
.smethod main int ()
  new r0, Derived
  consti r1, 5
  callctor r0, Derived, r1
  callinterface r2, Greeter, greet, r0
  ret r2
.end_method
.end
.entry Main.main
"#;

    #[test]
    fn round_trip_preserves_structure() {
        let p1 = assemble(SRC).unwrap();
        let text = print_asm(&p1);
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("re-assembly failed: {e}\n{text}"));
        assert_eq!(p1.classes.len(), p2.classes.len());
        assert_eq!(p1.methods.len(), p2.methods.len());
        assert_eq!(p1.fields.len(), p2.fields.len());
        for (c1, c2) in p1.classes.iter().zip(&p2.classes) {
            assert_eq!(c1.name, c2.name);
            assert_eq!(c1.is_interface, c2.is_interface);
            assert_eq!(c1.vtable.len(), c2.vtable.len());
        }
        // Bodies survive verbatim (same instruction sequences).
        for (m1, m2) in p1.methods.iter().zip(&p2.methods) {
            assert_eq!(m1.name, m2.name);
            assert_eq!(m1.code.len(), m2.code.len(), "method {}", m1.name);
        }
    }

    #[test]
    fn round_trip_is_a_fixpoint() {
        let p1 = assemble(SRC).unwrap();
        let t1 = print_asm(&p1);
        let p2 = assemble(&t1).unwrap();
        let t2 = print_asm(&p2);
        assert_eq!(t1, t2, "printing must be stable after one round trip");
    }
}
