//! Strongly-typed identifiers used across the whole system.
//!
//! Every entity (class, method, field, selector) has a program-global index.
//! Newtypes keep them from being mixed up ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a class (or interface) in a [`crate::Program`].
    ClassId,
    "C"
);
id_type!(
    /// Identifies a method in a [`crate::Program`] (program-global, not per class).
    MethodId,
    "M"
);
id_type!(
    /// Identifies a field in a [`crate::Program`] (program-global, not per class).
    FieldId,
    "F"
);
id_type!(
    /// An interned method selector (name). Virtual dispatch matches selectors.
    SelectorId,
    "S"
);

/// A virtual register inside one method frame.
///
/// Registers `0..nparams` hold the arguments on entry; register 0 is the
/// receiver (`this`) for instance methods.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl Reg {
    /// Returns the raw frame slot of this register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch target: an instruction index inside one method's code.
///
/// While a method is being built the label may be forward-declared and
/// unresolved; [`crate::builder::MethodBuilder::build`] patches all uses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

impl Label {
    /// Returns the instruction index this label points at.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let c = ClassId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(format!("{c}"), "C7");
        assert_eq!(format!("{c:?}"), "C7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(MethodId(1));
        set.insert(MethodId(2));
        set.insert(MethodId(1));
        assert_eq!(set.len(), 2);
        assert!(MethodId(1) < MethodId(2));
    }

    #[test]
    fn reg_and_label_display() {
        assert_eq!(format!("{}", Reg(3)), "r3");
        assert_eq!(format!("{}", Label(9)), "@9");
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn from_index_overflow_panics() {
        let _ = FieldId::from_index(usize::MAX);
    }
}
