//! A textual assembler for dchm bytecode.
//!
//! Programs can be written as plain text instead of through the Rust
//! [`crate::ProgramBuilder`] API — the same role `jasmin` plays for JVM
//! class files. The format is line-oriented:
//!
//! ```text
//! ; comments run to end of line
//! .class Employee
//! .field salary double
//! .end
//!
//! .class SalaryEmployee extends Employee
//! .field grade int private
//! .ctor (int)
//!   putfield r0, SalaryEmployee.grade, r1
//!   ret
//! .end_method
//! .method raise void ()
//!   getfield r2, r0, SalaryEmployee.grade
//!   consti r3, 2
//!   icmp eq, r4, r2, r3
//!   brif r4, Lhot
//!   ret
//! Lhot:
//!   getfield r5, r0, Employee.salary
//!   constd r6, 1.01
//!   dmul r5, r5, r6
//!   putfield r0, Employee.salary, r5
//!   ret
//! .end_method
//! .end
//!
//! .entry Main.main
//! ```
//!
//! Registers are written `rN`; `r0` is the receiver in instance methods and
//! constructors, parameters follow. Register counts are inferred. Labels
//! are identifiers followed by `:` on their own line.

use crate::builder::{MethodBuilder, ProgramBuilder};
use crate::class::{MethodSig, Visibility};
use crate::ids::{ClassId, FieldId, Label, MethodId, Reg};
use crate::instr::{DBinOp, IBinOp, IntrinsicKind};
use crate::program::Program;
use crate::value::{CmpOp, ElemKind, Ty, Value};
use crate::verify::VerifyError;
use std::collections::HashMap;
use std::fmt;

/// An assembly failure, with the 1-based source line.
#[derive(Clone, PartialEq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl From<VerifyError> for AsmError {
    fn from(e: VerifyError) -> Self {
        AsmError {
            line: 0,
            message: format!("verification failed: {e}"),
        }
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assembles a program from source text.
///
/// # Errors
/// Returns an [`AsmError`] pinpointing the offending line, or a wrapped
/// [`VerifyError`] if the assembled program fails verification.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}

struct PendingMethod {
    class: String,
    name: String,
    kind: PendingKind,
    params: Vec<Ty>,
    ret: Option<Ty>,
    visibility: Visibility,
    body: Vec<(usize, Vec<String>)>,
    start_line: usize,
}

#[derive(PartialEq, Clone, Copy)]
enum PendingKind {
    Instance,
    Static,
    Ctor,
    Abstract,
}

#[derive(Default)]
struct Assembler {
    classes: HashMap<String, ClassId>,
    fields: HashMap<(String, String), FieldId>,
    methods: HashMap<(String, String), MethodId>,
}

impl Assembler {
    fn new() -> Self {
        Self::default()
    }

    fn assemble(&mut self, source: &str) -> Result<Program, AsmError> {
        let mut pb = ProgramBuilder::new();
        let mut pending: Vec<PendingMethod> = Vec::new();
        let mut entry: Option<(usize, String)> = None;

        // Pass 1: declarations (classes, fields, method headers + raw bodies).
        let mut cur_class: Option<String> = None;
        let mut cur_method: Option<PendingMethod> = None;

        for (i, raw) in source.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let toks = tokenize(line);
            let head = toks[0].as_str();

            if let Some(pm) = &mut cur_method {
                if head == ".end_method" {
                    pending.push(cur_method.take().expect("checked"));
                } else {
                    pm.body.push((line_no, toks));
                }
                continue;
            }

            match head {
                ".class" | ".interface" => {
                    if cur_class.is_some() {
                        return err(line_no, "nested class declaration (missing .end?)");
                    }
                    let name = toks
                        .get(1)
                        .ok_or_else(|| AsmError {
                            line: line_no,
                            message: "class name expected".into(),
                        })?
                        .clone();
                    let mut cb = pb.class(&name);
                    if head == ".interface" {
                        cb = cb.interface();
                    }
                    let mut j = 2;
                    while j < toks.len() {
                        match toks[j].as_str() {
                            "extends" => {
                                let sup = toks.get(j + 1).ok_or_else(|| AsmError {
                                    line: line_no,
                                    message: "superclass expected after extends".into(),
                                })?;
                                let sup_id = *self.classes.get(sup).ok_or_else(|| AsmError {
                                    line: line_no,
                                    message: format!("unknown superclass {sup}"),
                                })?;
                                cb = cb.extends(sup_id);
                                j += 2;
                            }
                            "implements" => {
                                j += 1;
                                while j < toks.len()
                                    && toks[j] != "extends"
                                    && toks[j] != "implements"
                                {
                                    let iname = &toks[j];
                                    let iid =
                                        *self.classes.get(iname).ok_or_else(|| AsmError {
                                            line: line_no,
                                            message: format!("unknown interface {iname}"),
                                        })?;
                                    cb = cb.implements(iid);
                                    j += 1;
                                }
                            }
                            other => {
                                return err(line_no, format!("unexpected token {other}"));
                            }
                        }
                    }
                    let id = cb.build();
                    self.classes.insert(name.clone(), id);
                    cur_class = Some(name);
                }
                ".end" => {
                    if cur_class.take().is_none() {
                        return err(line_no, ".end without .class");
                    }
                }
                ".field" | ".sfield" => {
                    let class_name = cur_class.clone().ok_or_else(|| AsmError {
                        line: line_no,
                        message: "field outside class".into(),
                    })?;
                    let class = self.classes[&class_name];
                    let fname = toks.get(1).ok_or_else(|| AsmError {
                        line: line_no,
                        message: "field name expected".into(),
                    })?;
                    let ty = parse_ty(toks.get(2).map(String::as_str), line_no, self)?;
                    let is_static = head == ".sfield";
                    let mut vis = Visibility::Package;
                    let mut initial = ty.default_value();
                    for t in toks.iter().skip(3) {
                        match t.as_str() {
                            "private" => vis = Visibility::Private,
                            "public" => vis = Visibility::Public,
                            lit => {
                                initial = parse_value_literal(lit, ty, line_no)?;
                            }
                        }
                    }
                    let id = pb.field_raw(class, fname, ty, is_static, vis, initial);
                    self.fields.insert((class_name.clone(), fname.clone()), id);
                }
                ".method" | ".smethod" | ".amethod" => {
                    let class_name = cur_class.clone().ok_or_else(|| AsmError {
                        line: line_no,
                        message: "method outside class".into(),
                    })?;
                    let name = toks
                        .get(1)
                        .ok_or_else(|| AsmError {
                            line: line_no,
                            message: "method name expected".into(),
                        })?
                        .clone();
                    let ret = match toks.get(2).map(String::as_str) {
                        Some("void") => None,
                        other => Some(parse_ty(other, line_no, self)?),
                    };
                    let (params, vis) = parse_params(&toks[3..], line_no, self)?;
                    let kind = match head {
                        ".method" => PendingKind::Instance,
                        ".smethod" => PendingKind::Static,
                        _ => PendingKind::Abstract,
                    };
                    let pm = PendingMethod {
                        class: class_name,
                        name,
                        kind,
                        params,
                        ret,
                        visibility: vis,
                        body: Vec::new(),
                        start_line: line_no,
                    };
                    if kind == PendingKind::Abstract {
                        pending.push(pm);
                    } else {
                        cur_method = Some(pm);
                    }
                }
                ".ctor" => {
                    let class_name = cur_class.clone().ok_or_else(|| AsmError {
                        line: line_no,
                        message: "constructor outside class".into(),
                    })?;
                    let (params, vis) = parse_params(&toks[1..], line_no, self)?;
                    cur_method = Some(PendingMethod {
                        class: class_name,
                        name: crate::builder::CTOR_NAME.to_string(),
                        kind: PendingKind::Ctor,
                        params,
                        ret: None,
                        visibility: vis,
                        body: Vec::new(),
                        start_line: line_no,
                    });
                }
                ".entry" => {
                    let target = toks.get(1).ok_or_else(|| AsmError {
                        line: line_no,
                        message: "entry target expected (Class.method)".into(),
                    })?;
                    entry = Some((line_no, target.clone()));
                }
                other => {
                    return err(line_no, format!("unexpected directive {other}"));
                }
            }
        }
        if cur_method.is_some() {
            return err(source.lines().count(), "unterminated method (missing .end_method)");
        }
        if cur_class.is_some() {
            return err(source.lines().count(), "unterminated class (missing .end)");
        }

        // Pass 2: assemble bodies (all classes/fields now known).
        for pm in pending {
            let class = self.classes[&pm.class];
            let sig = MethodSig::new(pm.params.clone(), pm.ret);
            let mid = match pm.kind {
                PendingKind::Abstract => pb.abstract_method(class, &pm.name, sig),
                PendingKind::Ctor => {
                    let mut mb = pb.ctor(class, pm.params.clone());
                    mb.visibility(pm.visibility);
                    self.emit_body(&mut mb, &pm)?;
                    mb.build()
                }
                PendingKind::Instance => {
                    let mut mb = pb.method(class, &pm.name, sig);
                    mb.visibility(pm.visibility);
                    self.emit_body(&mut mb, &pm)?;
                    mb.build()
                }
                PendingKind::Static => {
                    let mut mb = pb.static_method(class, &pm.name, sig);
                    mb.visibility(pm.visibility);
                    self.emit_body(&mut mb, &pm)?;
                    mb.build()
                }
            };
            self.methods.insert((pm.class.clone(), pm.name.clone()), mid);
        }

        if let Some((line_no, target)) = entry {
            let (cname, mname) = split_dotted(&target, line_no)?;
            let mid = *self
                .methods
                .get(&(cname.to_string(), mname.to_string()))
                .ok_or_else(|| AsmError {
                    line: line_no,
                    message: format!("unknown entry {target}"),
                })?;
            pb.set_entry(mid);
        }
        Ok(pb.finish()?)
    }

    fn emit_body(&self, mb: &mut MethodBuilder<'_>, pm: &PendingMethod) -> Result<(), AsmError> {
        // Labels: two passes over the body lines.
        let mut labels: HashMap<String, Label> = HashMap::new();
        for (line_no, toks) in &pm.body {
            if toks.len() == 1 && toks[0].ends_with(':') {
                let name = toks[0].trim_end_matches(':').to_string();
                if labels.insert(name.clone(), mb.label()).is_some() {
                    return err(*line_no, format!("duplicate label {name}"));
                }
            }
        }
        let mut max_reg: u16 = 0;
        // Reserve registers mentioned anywhere in the body up front.
        for (_, toks) in &pm.body {
            for t in toks {
                if let Some(r) = parse_reg_opt(t) {
                    max_reg = max_reg.max(r.0 + 1);
                }
            }
        }
        mb.ensure_regs(max_reg);

        for (line_no, toks) in &pm.body {
            let line_no = *line_no;
            if toks.len() == 1 && toks[0].ends_with(':') {
                let name = toks[0].trim_end_matches(':');
                mb.bind(labels[name]);
                continue;
            }
            self.emit_instr(mb, &labels, line_no, toks)?;
        }
        let _ = pm.start_line;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn emit_instr(
        &self,
        mb: &mut MethodBuilder<'_>,
        labels: &HashMap<String, Label>,
        line: usize,
        toks: &[String],
    ) -> Result<(), AsmError> {
        let op = toks[0].as_str();
        let reg = |k: usize| -> Result<Reg, AsmError> {
            toks.get(k)
                .and_then(|t| parse_reg_opt(t))
                .ok_or_else(|| AsmError {
                    line,
                    message: format!("register expected at operand {k}"),
                })
        };
        let int_lit = |k: usize| -> Result<i64, AsmError> {
            toks.get(k)
                .and_then(|t| t.parse::<i64>().ok())
                .ok_or_else(|| AsmError {
                    line,
                    message: format!("integer expected at operand {k}"),
                })
        };
        let label = |k: usize| -> Result<Label, AsmError> {
            let name = toks.get(k).ok_or_else(|| AsmError {
                line,
                message: "label expected".into(),
            })?;
            labels.get(name).copied().ok_or_else(|| AsmError {
                line,
                message: format!("unknown label {name}"),
            })
        };
        let field = |k: usize| -> Result<FieldId, AsmError> {
            let t = toks.get(k).ok_or_else(|| AsmError {
                line,
                message: "Class.field expected".into(),
            })?;
            let (c, f) = split_dotted(t, line)?;
            self.fields
                .get(&(c.to_string(), f.to_string()))
                .copied()
                .ok_or_else(|| AsmError {
                    line,
                    message: format!("unknown field {t}"),
                })
        };
        let class = |k: usize| -> Result<ClassId, AsmError> {
            let t = toks.get(k).ok_or_else(|| AsmError {
                line,
                message: "class expected".into(),
            })?;
            self.classes.get(t).copied().ok_or_else(|| AsmError {
                line,
                message: format!("unknown class {t}"),
            })
        };
        let rest_regs = |from: usize| -> Result<Vec<Reg>, AsmError> {
            toks[from..]
                .iter()
                .map(|t| {
                    parse_reg_opt(t).ok_or_else(|| AsmError {
                        line,
                        message: format!("register expected, found {t}"),
                    })
                })
                .collect()
        };

        match op {
            "consti" => {
                let d = reg(1)?;
                let v = int_lit(2)?;
                mb.const_i(d, v);
            }
            "constd" => {
                let d = reg(1)?;
                let v: f64 = toks
                    .get(2)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| AsmError {
                        line,
                        message: "float expected".into(),
                    })?;
                mb.const_d(d, v);
            }
            "constnull" => mb.const_null(reg(1)?),
            "mov" => {
                let (d, s) = (reg(1)?, reg(2)?);
                mb.mov(d, s);
            }
            "iadd" | "isub" | "imul" | "idiv" | "irem" | "iand" | "ior" | "ixor" | "ishl"
            | "ishr" => {
                let b = match op {
                    "iadd" => IBinOp::Add,
                    "isub" => IBinOp::Sub,
                    "imul" => IBinOp::Mul,
                    "idiv" => IBinOp::Div,
                    "irem" => IBinOp::Rem,
                    "iand" => IBinOp::And,
                    "ior" => IBinOp::Or,
                    "ixor" => IBinOp::Xor,
                    "ishl" => IBinOp::Shl,
                    _ => IBinOp::Shr,
                };
                mb.ibin(b, reg(1)?, reg(2)?, reg(3)?);
            }
            "ineg" => mb.ineg(reg(1)?, reg(2)?),
            "dadd" | "dsub" | "dmul" | "ddiv" => {
                let b = match op {
                    "dadd" => DBinOp::Add,
                    "dsub" => DBinOp::Sub,
                    "dmul" => DBinOp::Mul,
                    _ => DBinOp::Div,
                };
                mb.dbin(b, reg(1)?, reg(2)?, reg(3)?);
            }
            "i2d" => mb.i2d(reg(1)?, reg(2)?),
            "d2i" => mb.d2i(reg(1)?, reg(2)?),
            "icmp" | "dcmp" => {
                let c = parse_cmp(toks.get(1).map(String::as_str), line)?;
                if op == "icmp" {
                    mb.icmp(c, reg(2)?, reg(3)?, reg(4)?);
                } else {
                    mb.dcmp(c, reg(2)?, reg(3)?, reg(4)?);
                }
            }
            "refeq" => mb.ref_eq(reg(1)?, reg(2)?, reg(3)?),
            "jmp" => mb.jmp(label(1)?),
            "brif" => {
                let c = reg(1)?;
                mb.br_if(c, label(2)?);
            }
            "ret" => {
                let v = toks.get(1).and_then(|t| parse_reg_opt(t));
                mb.ret(v);
            }
            "new" => mb.new_obj(reg(1)?, class(2)?),
            "getfield" => mb.get_field(reg(1)?, reg(2)?, field(3)?),
            "putfield" => mb.put_field(reg(1)?, field(2)?, reg(3)?),
            "getstatic" => mb.get_static(reg(1)?, field(2)?),
            "putstatic" => {
                let f = field(1)?;
                mb.put_static(f, reg(2)?);
            }
            "callvirtual" | "callvirtual_v" => {
                // callvirtual dst, obj, name, args... | callvirtual_v obj, name, args...
                if op == "callvirtual" {
                    let d = reg(1)?;
                    let o = reg(2)?;
                    let name = toks.get(3).cloned().ok_or_else(|| AsmError {
                        line,
                        message: "method name expected".into(),
                    })?;
                    mb.call_virtual(Some(d), o, &name, rest_regs(4)?);
                } else {
                    let o = reg(1)?;
                    let name = toks.get(2).cloned().ok_or_else(|| AsmError {
                        line,
                        message: "method name expected".into(),
                    })?;
                    mb.call_virtual(None, o, &name, rest_regs(3)?);
                }
            }
            "callspecial" | "callspecial_v" => {
                // callspecial dst, Class, name, obj, args...
                let (dst, base) = if op == "callspecial" {
                    (Some(reg(1)?), 2)
                } else {
                    (None, 1)
                };
                let c = class(base)?;
                let name = toks.get(base + 1).cloned().ok_or_else(|| AsmError {
                    line,
                    message: "method name expected".into(),
                })?;
                let o = reg(base + 2)?;
                mb.call_special(dst, c, &name, o, rest_regs(base + 3)?);
            }
            "callctor" => {
                // callctor obj, Class, args...
                let o = reg(1)?;
                let c = class(2)?;
                let args = rest_regs(3)?;
                mb.call_ctor(o, c, args);
            }
            "callstatic" | "callstatic_v" => {
                // callstatic dst, Class.name, args...
                let (dst, base) = if op == "callstatic" {
                    (Some(reg(1)?), 2)
                } else {
                    (None, 1)
                };
                let t = toks.get(base).ok_or_else(|| AsmError {
                    line,
                    message: "Class.method expected".into(),
                })?;
                let (c, mname) = split_dotted(t, line)?;
                let mid = *self
                    .methods
                    .get(&(c.to_string(), mname.to_string()))
                    .ok_or_else(|| AsmError {
                        line,
                        message: format!("unknown method {t}"),
                    })?;
                mb.call_static(dst, mid, rest_regs(base + 1)?);
            }
            "callinterface" | "callinterface_v" => {
                // callinterface dst, Iface, name, obj, args...
                let (dst, base) = if op == "callinterface" {
                    (Some(reg(1)?), 2)
                } else {
                    (None, 1)
                };
                let i = class(base)?;
                let name = toks.get(base + 1).cloned().ok_or_else(|| AsmError {
                    line,
                    message: "method name expected".into(),
                })?;
                let o = reg(base + 2)?;
                mb.call_interface(dst, i, o, &name, rest_regs(base + 3)?);
            }
            "instanceof" => mb.instance_of(reg(1)?, reg(2)?, class(3)?),
            "checkcast" => mb.check_cast(reg(1)?, class(2)?),
            "newarr" => {
                let d = reg(1)?;
                let k = parse_elem_kind(toks.get(2).map(String::as_str), line)?;
                mb.new_arr(d, k, reg(3)?);
            }
            "aload" => mb.aload(reg(1)?, reg(2)?, reg(3)?),
            "astore" => mb.astore(reg(1)?, reg(2)?, reg(3)?),
            "alen" => mb.alen(reg(1)?, reg(2)?),
            "printint" => mb.print_int(reg(1)?),
            "printdouble" => mb.intrinsic(None, IntrinsicKind::PrintDouble, vec![reg(1)?]),
            "sinkint" => mb.sink_int(reg(1)?),
            "sinkdouble" => mb.sink_double(reg(1)?),
            "dsqrt" => mb.dsqrt(reg(1)?, reg(2)?),
            "dabs" => mb.intrinsic(Some(reg(1)?), IntrinsicKind::DAbs, vec![reg(2)?]),
            "iabs" => mb.intrinsic(Some(reg(1)?), IntrinsicKind::IAbs, vec![reg(2)?]),
            "imin" => mb.intrinsic(Some(reg(1)?), IntrinsicKind::IMin, vec![reg(2)?, reg(3)?]),
            "imax" => mb.intrinsic(Some(reg(1)?), IntrinsicKind::IMax, vec![reg(2)?, reg(3)?]),
            "dneg" => mb.op(crate::instr::Op::DNeg { dst: reg(1)?, a: reg(2)? }),
            "printchar" => mb.intrinsic(None, IntrinsicKind::PrintChar, vec![reg(1)?]),
            other => {
                return err(line, format!("unknown instruction {other}"));
            }
        }
        Ok(())
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn tokenize(line: &str) -> Vec<String> {
    line.split(|c: char| c.is_whitespace() || c == ',' || c == '(' || c == ')')
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_reg_opt(t: &str) -> Option<Reg> {
    let rest = t.strip_prefix('r')?;
    rest.parse::<u16>().ok().map(Reg)
}

fn parse_ty(t: Option<&str>, line: usize, asm: &Assembler) -> Result<Ty, AsmError> {
    match t {
        Some("int") => Ok(Ty::Int),
        Some("double") => Ok(Ty::Double),
        Some("int[]") => Ok(Ty::Arr(ElemKind::Int)),
        Some("double[]") => Ok(Ty::Arr(ElemKind::Double)),
        Some("ref[]") => Ok(Ty::Arr(ElemKind::Ref)),
        Some(name) => match asm.classes.get(name) {
            Some(&c) => Ok(Ty::Ref(c)),
            None => err(line, format!("unknown type {name}")),
        },
        None => err(line, "type expected"),
    }
}

fn parse_params(
    toks: &[String],
    line: usize,
    asm: &Assembler,
) -> Result<(Vec<Ty>, Visibility), AsmError> {
    let mut params = Vec::new();
    let mut vis = Visibility::Public;
    for t in toks {
        match t.as_str() {
            "private" => vis = Visibility::Private,
            "public" => vis = Visibility::Public,
            other => params.push(parse_ty(Some(other), line, asm)?),
        }
    }
    Ok((params, vis))
}

fn parse_value_literal(lit: &str, ty: Ty, line: usize) -> Result<Value, AsmError> {
    match ty {
        Ty::Int => lit
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| AsmError {
                line,
                message: format!("bad int literal {lit}"),
            }),
        Ty::Double => lit
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| AsmError {
                line,
                message: format!("bad float literal {lit}"),
            }),
        _ => {
            if lit == "null" {
                Ok(Value::Null)
            } else {
                err(line, "reference fields may only be initialized to null")
            }
        }
    }
}

fn parse_cmp(t: Option<&str>, line: usize) -> Result<CmpOp, AsmError> {
    match t {
        Some("eq") => Ok(CmpOp::Eq),
        Some("ne") => Ok(CmpOp::Ne),
        Some("lt") => Ok(CmpOp::Lt),
        Some("le") => Ok(CmpOp::Le),
        Some("gt") => Ok(CmpOp::Gt),
        Some("ge") => Ok(CmpOp::Ge),
        other => err(line, format!("comparison operator expected, found {other:?}")),
    }
}

fn parse_elem_kind(t: Option<&str>, line: usize) -> Result<ElemKind, AsmError> {
    match t {
        Some("int") => Ok(ElemKind::Int),
        Some("double") => Ok(ElemKind::Double),
        Some("ref") => Ok(ElemKind::Ref),
        other => err(line, format!("element kind expected, found {other:?}")),
    }
}

fn split_dotted(t: &str, line: usize) -> Result<(&str, &str), AsmError> {
    match t.rsplit_once('.') {
        Some((c, m)) => Ok((c, m)),
        None => err(line, format!("expected Class.member, found {t}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HELLO: &str = r#"
; minimal program
.class Main
.smethod main int ()
  consti r0, 40
  consti r1, 2
  iadd r2, r0, r1
  sinkint r2
  ret r2
.end_method
.end
.entry Main.main
"#;

    #[test]
    fn assembles_and_verifies_hello() {
        let p = assemble(HELLO).unwrap();
        assert!(p.entry.is_some());
        let main = p.method(p.entry.unwrap());
        assert_eq!(main.name, "main");
        assert!(main.num_regs >= 3);
    }

    #[test]
    fn full_feature_program() {
        let src = r#"
.interface Greeter
.amethod greet int ()
.end

.class Base
.field x int
.ctor (int)
  putfield r0, Base.x, r1
  ret
.end_method
.method getx int ()
  getfield r2, r0, Base.x
  ret r2
.end_method
.end

.class Derived extends Base implements Greeter
.ctor (int)
  callspecial_v Base <init> r0 r1
  ret
.end_method
.method greet int ()
  callvirtual r2, r0, getx
  consti r3, 100
  iadd r2, r2, r3
  ret r2
.end_method
.end

.class Main
.smethod main int ()
  new r0, Derived
  consti r1, 5
  callctor r0, Derived, r1
  callinterface r2, Greeter, greet, r0
  instanceof r3, r0, Base
  iadd r2, r2, r3
  ret r2
.end_method
.end
.entry Main.main
"#;
        let p = assemble(src).unwrap();
        // Execute it for real via the facade-level VM in integration tests;
        // here check structure.
        let derived = p.class_by_name("Derived").unwrap();
        let base = p.class_by_name("Base").unwrap();
        let greeter = p.class_by_name("Greeter").unwrap();
        assert!(p.is_subclass(derived, base));
        assert!(p.implements(derived, greeter));
    }

    #[test]
    fn labels_and_branches() {
        let src = r#"
.class Main
.smethod main int (int)
  consti r1, 0
  consti r2, 0
Lhead:
  consti r3, 10
  icmp ge, r4, r2, r3
  brif r4, Ldone
  iadd r1, r1, r2
  consti r5, 1
  iadd r2, r2, r5
  jmp Lhead
Ldone:
  ret r1
.end_method
.end
.entry Main.main
"#;
        let p = assemble(src).unwrap();
        assert!(p.entry.is_some());
    }

    #[test]
    fn error_reports_line() {
        let src = ".class Main\n.smethod main void ()\n  bogus r1\n  ret\n.end_method\n.end\n";
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_label_reported() {
        let src = ".class Main\n.smethod main void ()\n  jmp Lnope\n  ret\n.end_method\n.end\n";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("Lnope"));
    }

    #[test]
    fn unknown_field_reported() {
        let src =
            ".class Main\n.smethod main void ()\n  getstatic r1, Main.nope\n  ret\n.end_method\n.end\n";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("Main.nope"));
    }

    #[test]
    fn verification_failures_propagate() {
        // Method falls off the end.
        let src = ".class Main\n.smethod main void ()\n  consti r1, 1\n.end_method\n.end\n";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("verification"));
    }

    #[test]
    fn comments_and_commas_are_flexible() {
        let src = "
.class Main ; the main class
.smethod main int ()
  consti r0 7   ; no commas needed
  ret r0
.end_method
.end
.entry Main.main
";
        assert!(assemble(src).is_ok());
    }

    #[test]
    fn static_field_with_initializer() {
        let src = "
.class C
.sfield counter int 42
.smethod read int ()
  getstatic r0, C.counter
  ret r0
.end_method
.end
";
        let p = assemble(src).unwrap();
        let c = p.class_by_name("C").unwrap();
        let f = p.field_by_name(c, "counter").unwrap();
        assert_eq!(p.field(f).initial, Value::Int(42));
    }
}
