//! Structural bytecode verification.
//!
//! The verifier enforces the invariants the evaluator, the optimizer and the
//! mutation engine rely on, so that they can use `panic!`-on-impossible
//! internally without risking silent miscompilation:
//!
//! * branch targets are in range and the last instruction cannot fall off
//!   the end of the method;
//! * every register index is within the method's declared frame;
//! * field accesses agree with the static/instance split;
//! * call sites resolve and pass the right number of arguments;
//! * `Notify*` patch-point pseudo-ops never appear in frontend bytecode
//!   (they are compiler-inserted only);
//! * interfaces declare no instance state and no concrete code.

use crate::class::MethodKind;
use crate::ids::{ClassId, MethodId};
use crate::instr::{Instr, Op};
use crate::program::Program;
use std::fmt;

/// A verification failure. The `method`/`class` fields name the offending
/// entity by its human-readable name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// The class hierarchy contains a cycle.
    CyclicHierarchy {
        /// A class on the cycle.
        class: String,
    },
    /// A branch target is out of range.
    BadBranchTarget {
        /// Offending method.
        method: String,
        /// Instruction index of the branch.
        at: usize,
        /// The bogus target.
        target: usize,
    },
    /// Control can fall off the end of the method.
    FallsOffEnd {
        /// Offending method.
        method: String,
    },
    /// A register index is outside the declared frame.
    RegOutOfRange {
        /// Offending method.
        method: String,
        /// Instruction index.
        at: usize,
        /// The register.
        reg: u16,
        /// Declared frame size.
        num_regs: u16,
    },
    /// An instance field was accessed with a static op or vice versa.
    FieldKindMismatch {
        /// Offending method.
        method: String,
        /// Instruction index.
        at: usize,
        /// The field's name.
        field: String,
    },
    /// A call site could not be resolved.
    UnresolvedCall {
        /// Offending method.
        method: String,
        /// Instruction index.
        at: usize,
        /// Human-readable description of the target.
        target: String,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// Offending method.
        method: String,
        /// Instruction index.
        at: usize,
        /// Callee name.
        callee: String,
        /// Expected argument count (excluding receiver).
        expected: usize,
        /// Found argument count.
        found: usize,
    },
    /// A `Notify*` pseudo-op appeared in frontend bytecode.
    NotifyInSource {
        /// Offending method.
        method: String,
        /// Instruction index.
        at: usize,
    },
    /// `new` on an interface.
    NewOfInterface {
        /// Offending method.
        method: String,
        /// Instruction index.
        at: usize,
        /// The interface's name.
        class: String,
    },
    /// An interface declares an instance field or concrete method.
    MalformedInterface {
        /// The interface's name.
        class: String,
    },
    /// The entry point is not a static method.
    BadEntry {
        /// Entry method name.
        method: String,
    },
    /// Two methods share a selector but disagree on arity, which would make
    /// vtable dispatch ill-typed.
    SelectorArityConflict {
        /// The selector's name.
        selector: String,
    },
    /// A class declares more than one constructor. Constructors share the
    /// `<init>` selector and `invokespecial` resolves by selector, so
    /// overloaded constructors are not representable.
    MultipleConstructors {
        /// The class's name.
        class: String,
    },
    /// An instruction references an entity id outside the program's tables
    /// (a dangling class/method/field/selector reference).
    DanglingRef {
        /// Offending method.
        method: String,
        /// Instruction index.
        at: usize,
        /// Human-readable description of the dangling id.
        what: String,
    },
    /// An instruction can never execute (no path from the method entry
    /// reaches it). Only reported by [`verify_reachability`] /
    /// [`crate::ProgramBuilder::finish_strict`]; plain verification
    /// tolerates dead code.
    UnreachableCode {
        /// Offending method.
        method: String,
        /// Index of the first unreachable instruction.
        at: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::CyclicHierarchy { class } => {
                write!(f, "cyclic class hierarchy involving {class}")
            }
            VerifyError::BadBranchTarget { method, at, target } => {
                write!(f, "{method}@{at}: branch target {target} out of range")
            }
            VerifyError::FallsOffEnd { method } => {
                write!(f, "{method}: control can fall off the end")
            }
            VerifyError::RegOutOfRange {
                method,
                at,
                reg,
                num_regs,
            } => write!(
                f,
                "{method}@{at}: register r{reg} outside frame of {num_regs}"
            ),
            VerifyError::FieldKindMismatch { method, at, field } => {
                write!(f, "{method}@{at}: static/instance mismatch on field {field}")
            }
            VerifyError::UnresolvedCall { method, at, target } => {
                write!(f, "{method}@{at}: cannot resolve call to {target}")
            }
            VerifyError::ArityMismatch {
                method,
                at,
                callee,
                expected,
                found,
            } => write!(
                f,
                "{method}@{at}: call to {callee} passes {found} args, expected {expected}"
            ),
            VerifyError::NotifyInSource { method, at } => {
                write!(f, "{method}@{at}: Notify pseudo-op in frontend bytecode")
            }
            VerifyError::NewOfInterface { method, at, class } => {
                write!(f, "{method}@{at}: cannot instantiate interface {class}")
            }
            VerifyError::MalformedInterface { class } => {
                write!(f, "interface {class} declares instance state or concrete code")
            }
            VerifyError::BadEntry { method } => {
                write!(f, "entry point {method} is not a static method")
            }
            VerifyError::SelectorArityConflict { selector } => {
                write!(f, "methods sharing selector {selector} disagree on arity")
            }
            VerifyError::MultipleConstructors { class } => {
                write!(f, "class {class} declares more than one constructor")
            }
            VerifyError::DanglingRef { method, at, what } => {
                write!(f, "{method}@{at}: dangling reference to {what}")
            }
            VerifyError::UnreachableCode { method, at } => {
                write!(f, "{method}@{at}: instruction is unreachable")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a linked program.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    verify_interfaces(p)?;
    verify_selector_arities(p)?;
    for c in &p.classes {
        let ctors = c
            .methods
            .iter()
            .filter(|&&m| p.method(m).kind == MethodKind::Constructor)
            .count();
        if ctors > 1 {
            return Err(VerifyError::MultipleConstructors {
                class: c.name.clone(),
            });
        }
    }
    if let Some(entry) = p.entry {
        if p.method(entry).kind != MethodKind::Static {
            return Err(VerifyError::BadEntry {
                method: p.method(entry).name.clone(),
            });
        }
    }
    for i in 0..p.methods.len() {
        verify_method(p, MethodId::from_index(i))?;
    }
    Ok(())
}

fn verify_interfaces(p: &Program) -> Result<(), VerifyError> {
    for c in &p.classes {
        if !c.is_interface {
            continue;
        }
        let has_instance_field = c
            .fields
            .iter()
            .any(|&f| !p.field(f).is_static);
        let has_concrete_method = c
            .methods
            .iter()
            .any(|&m| p.method(m).kind != MethodKind::Abstract);
        if has_instance_field || has_concrete_method {
            return Err(VerifyError::MalformedInterface {
                class: c.name.clone(),
            });
        }
    }
    Ok(())
}

fn verify_selector_arities(p: &Program) -> Result<(), VerifyError> {
    use std::collections::HashMap;
    let mut arity: HashMap<u32, usize> = HashMap::new();
    for m in &p.methods {
        if m.kind == MethodKind::Static || m.kind == MethodKind::Constructor {
            continue; // statically named; selectors need not be globally consistent
        }
        match arity.insert(m.selector.0, m.sig.params.len()) {
            Some(prev) if prev != m.sig.params.len() => {
                return Err(VerifyError::SelectorArityConflict {
                    selector: p.selector_name(m.selector).to_string(),
                });
            }
            _ => {}
        }
    }
    Ok(())
}

fn verify_method(p: &Program, mid: MethodId) -> Result<(), VerifyError> {
    let m = p.method(mid);
    if m.kind == MethodKind::Abstract {
        return Ok(());
    }
    let name = || format!("{}::{}", p.class(m.owner).name, m.name);

    if m.code.is_empty() || !m.code.last().unwrap().is_terminator() {
        return Err(VerifyError::FallsOffEnd { method: name() });
    }

    let check_reg = |r: crate::ids::Reg, at: usize| -> Result<(), VerifyError> {
        if r.0 >= m.num_regs {
            Err(VerifyError::RegOutOfRange {
                method: name(),
                at,
                reg: r.0,
                num_regs: m.num_regs,
            })
        } else {
            Ok(())
        }
    };

    for (at, instr) in m.code.iter().enumerate() {
        match instr {
            Instr::Jmp(t) => {
                if t.index() >= m.code.len() {
                    return Err(VerifyError::BadBranchTarget {
                        method: name(),
                        at,
                        target: t.index(),
                    });
                }
            }
            Instr::BrIf { cond, target } => {
                check_reg(*cond, at)?;
                if target.index() >= m.code.len() {
                    return Err(VerifyError::BadBranchTarget {
                        method: name(),
                        at,
                        target: target.index(),
                    });
                }
                // BrIf at the last position would fall through off the end.
                if at + 1 >= m.code.len() {
                    return Err(VerifyError::FallsOffEnd { method: name() });
                }
            }
            Instr::Ret(v) => {
                if let Some(r) = v {
                    check_reg(*r, at)?;
                }
            }
            Instr::Op(op) => {
                let mut reg_err = None;
                if let Some(d) = op.def() {
                    if d.0 >= m.num_regs {
                        reg_err = Some(d);
                    }
                }
                op.for_each_use(|r| {
                    if r.0 >= m.num_regs && reg_err.is_none() {
                        reg_err = Some(r);
                    }
                });
                if let Some(r) = reg_err {
                    return Err(VerifyError::RegOutOfRange {
                        method: name(),
                        at,
                        reg: r.0,
                        num_regs: m.num_regs,
                    });
                }
                check_refs(p, op, &name, at)?;
                verify_op(p, op, &name, at)?;
            }
        }
    }
    Ok(())
}

/// Rejects entity ids that index outside the program's tables, so the
/// resolution checks below (and every downstream consumer) can index
/// without panicking. Runs before [`verify_op`] on every instruction.
fn check_refs(
    p: &Program,
    op: &Op,
    name: &dyn Fn() -> String,
    at: usize,
) -> Result<(), VerifyError> {
    let dangling = |what: String| VerifyError::DanglingRef {
        method: name(),
        at,
        what,
    };
    let class = |c: &ClassId| {
        (c.index() < p.classes.len())
            .then_some(())
            .ok_or_else(|| dangling(format!("class {c}")))
    };
    let field = |f: &crate::ids::FieldId| {
        (f.index() < p.fields.len())
            .then_some(())
            .ok_or_else(|| dangling(format!("field {f}")))
    };
    let sel = |s: &crate::ids::SelectorId| {
        (s.index() < p.selectors.len())
            .then_some(())
            .ok_or_else(|| dangling(format!("selector {s}")))
    };
    match op {
        Op::New { class: c, .. }
        | Op::InstanceOf { class: c, .. }
        | Op::CheckCast { class: c, .. } => class(c),
        Op::GetField { field: f, .. }
        | Op::PutField { field: f, .. }
        | Op::GetStatic { field: f, .. }
        | Op::PutStatic { field: f, .. } => field(f),
        Op::CallVirtual { sel: s, .. } => sel(s),
        Op::CallSpecial { class: c, sel: s, .. } => class(c).and_then(|()| sel(s)),
        Op::CallInterface { iface, sel: s, .. } => class(iface).and_then(|()| sel(s)),
        Op::CallStatic { method, .. } => (method.index() < p.methods.len())
            .then_some(())
            .ok_or_else(|| dangling(format!("method {method}"))),
        _ => Ok(()),
    }
}

fn check_field(
    p: &Program,
    field: crate::ids::FieldId,
    want_static: bool,
    name: &dyn Fn() -> String,
    at: usize,
) -> Result<(), VerifyError> {
    if p.field(field).is_static != want_static {
        return Err(VerifyError::FieldKindMismatch {
            method: name(),
            at,
            field: p.field(field).name.clone(),
        });
    }
    Ok(())
}

fn check_arity(
    expected: usize,
    found: usize,
    callee: String,
    name: &dyn Fn() -> String,
    at: usize,
) -> Result<(), VerifyError> {
    if expected != found {
        return Err(VerifyError::ArityMismatch {
            method: name(),
            at,
            callee,
            expected,
            found,
        });
    }
    Ok(())
}

fn verify_op(
    p: &Program,
    op: &Op,
    name: &dyn Fn() -> String,
    at: usize,
) -> Result<(), VerifyError> {
    match op {
        Op::GetField { field, .. } | Op::PutField { field, .. } => {
            check_field(p, *field, false, name, at)
        }
        Op::GetStatic { field, .. } | Op::PutStatic { field, .. } => {
            check_field(p, *field, true, name, at)
        }
        Op::New { class, .. } => {
            if p.class(*class).is_interface {
                return Err(VerifyError::NewOfInterface {
                    method: name(),
                    at,
                    class: p.class(*class).name.clone(),
                });
            }
            Ok(())
        }
        Op::CallVirtual { sel, args, .. } => {
            // The selector must be implemented somewhere with matching arity.
            let target = p
                .methods
                .iter()
                .find(|m| m.selector == *sel && m.kind != MethodKind::Static);
            match target {
                Some(m) => check_arity(m.sig.params.len(), args.len(), m.name.clone(), name, at),
                None => Err(VerifyError::UnresolvedCall {
                    method: name(),
                    at,
                    target: p.selector_name(*sel).to_string(),
                }),
            }
        }
        Op::CallSpecial {
            class, sel, args, ..
        } => match p.resolve_special(*class, *sel) {
            Some(m) => check_arity(
                p.method(m).sig.params.len(),
                args.len(),
                p.method(m).name.clone(),
                name,
                at,
            ),
            None => Err(VerifyError::UnresolvedCall {
                method: name(),
                at,
                target: format!("{}::{}", p.class(*class).name, p.selector_name(*sel)),
            }),
        },
        Op::CallStatic { method, args, .. } => {
            let m = p.method(*method);
            if m.kind != MethodKind::Static {
                return Err(VerifyError::UnresolvedCall {
                    method: name(),
                    at,
                    target: format!("{} (not static)", m.name),
                });
            }
            check_arity(m.sig.params.len(), args.len(), m.name.clone(), name, at)
        }
        Op::CallInterface {
            iface, sel, args, ..
        } => {
            if !p.class(*iface).is_interface {
                return Err(VerifyError::UnresolvedCall {
                    method: name(),
                    at,
                    target: format!("{} (not an interface)", p.class(*iface).name),
                });
            }
            let target = p
                .class(*iface)
                .methods
                .iter()
                .map(|&m| p.method(m))
                .find(|m| m.selector == *sel);
            match target {
                Some(m) => check_arity(m.sig.params.len(), args.len(), m.name.clone(), name, at),
                None => Err(VerifyError::UnresolvedCall {
                    method: name(),
                    at,
                    target: format!("{}::{}", p.class(*iface).name, p.selector_name(*sel)),
                }),
            }
        }
        Op::NotifyCtorExit { .. }
        | Op::NotifyInstStore { .. }
        | Op::NotifyStaticStore { .. }
        | Op::GuardState { .. } => Err(VerifyError::NotifyInSource { method: name(), at }),
        _ => Ok(()),
    }
}

/// Checks that every instruction of every concrete method is reachable
/// from its entry.
///
/// This is *stricter* than [`verify_program`]: the evaluator tolerates dead
/// code (it simply never runs), and hand-written workloads occasionally
/// carry some, so plain verification accepts it. Machine generators and
/// shrinkers, on the other hand, must not emit code the differential oracle
/// can never exercise — they link through
/// [`crate::ProgramBuilder::finish_strict`], which adds this pass.
///
/// # Errors
/// Returns [`VerifyError::UnreachableCode`] naming the first dead
/// instruction found.
pub fn verify_reachability(p: &Program) -> Result<(), VerifyError> {
    for m in &p.methods {
        if m.code.is_empty() {
            continue;
        }
        let n = m.code.len();
        let mut reachable = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if i >= n || reachable[i] {
                continue;
            }
            reachable[i] = true;
            match &m.code[i] {
                Instr::Jmp(t) => stack.push(t.index()),
                Instr::BrIf { target, .. } => {
                    stack.push(target.index());
                    stack.push(i + 1);
                }
                Instr::Ret(_) => {}
                Instr::Op(_) => stack.push(i + 1),
            }
        }
        if let Some(at) = reachable.iter().position(|&r| !r) {
            return Err(VerifyError::UnreachableCode {
                method: format!("{}::{}", p.class(m.owner).name, m.name),
                at,
            });
        }
    }
    Ok(())
}

/// Convenience: verify and name the class a method belongs to.
pub fn method_display_name(p: &Program, m: MethodId) -> String {
    let md = p.method(m);
    format!("{}::{}", p.class(md.owner).name, md.name)
}

/// Returns the declaring class of `m` (helper mirroring
/// [`method_display_name`]).
pub fn method_owner(p: &Program, m: MethodId) -> ClassId {
    p.method(m).owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::MethodSig;
    use crate::ids::{Label, Reg};
    use crate::value::Ty;

    #[test]
    fn ok_program_verifies() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "main", MethodSig::void());
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        assert!(pb.finish().is_ok());
    }

    #[test]
    fn falls_off_end_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        let r = m.reg();
        m.const_i(r, 1); // no terminator
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::FallsOffEnd { .. }));
    }

    #[test]
    fn brif_last_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        let l = m.label();
        m.bind(l);
        let r = m.reg();
        m.const_i(r, 1);
        m.br_if(r, l); // BrIf as last instruction can fall off
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::FallsOffEnd { .. }));
    }

    #[test]
    fn reg_out_of_range_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        m.emit(crate::Instr::Ret(Some(Reg(99))));
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::RegOutOfRange { reg: 99, .. }));
    }

    #[test]
    fn bad_branch_target_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        m.emit(crate::Instr::Jmp(Label(42)));
        m.ret(None);
        // Bypass label resolution by emitting a raw out-of-range label: the
        // builder would normally panic, so emit directly.
        let err = {
            // label resolution happens in build() only for builder labels;
            // raw labels pass through untouched.
            m.build();
            pb.finish().unwrap_err()
        };
        assert!(matches!(err, VerifyError::BadBranchTarget { target: 42, .. }));
    }

    #[test]
    fn field_kind_mismatch_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let f = pb.static_field(c, "s", Ty::Int, 0i64.into());
        let mut m = pb.method(c, "f", MethodSig::void());
        let r = m.reg();
        let this = m.this();
        m.get_field(r, this, f); // static field via instance op
        m.ret(None);
        m.build();
        pb.trivial_ctor(c);
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::FieldKindMismatch { .. }));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut callee = pb.method(c, "takes2", MethodSig::new(vec![Ty::Int, Ty::Int], None));
        callee.ret(None);
        callee.build();
        let mut m = pb.method(c, "f", MethodSig::void());
        let this = m.this();
        let a = m.imm(1);
        m.call_virtual(None, this, "takes2", vec![a]); // only one arg
        m.ret(None);
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(
            err,
            VerifyError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn notify_in_source_rejected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let f = pb.instance_field(c, "x", Ty::Int);
        let mut m = pb.method(c, "f", MethodSig::void());
        let this = m.this();
        m.op(Op::NotifyInstStore {
            obj: this,
            class: c,
            field: f,
        });
        m.ret(None);
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::NotifyInSource { .. }));
    }

    #[test]
    fn new_of_interface_rejected() {
        let mut pb = ProgramBuilder::new();
        let i = pb.class("I").interface().build();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        let r = m.reg();
        m.new_obj(r, i);
        m.ret(None);
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::NewOfInterface { .. }));
    }

    #[test]
    fn selector_arity_conflict_rejected() {
        let mut pb = ProgramBuilder::new();
        let a = pb.class("A").build();
        let b = pb.class("B").build();
        let mut m = pb.method(a, "f", MethodSig::new(vec![Ty::Int], None));
        m.ret(None);
        m.build();
        let mut m = pb.method(b, "f", MethodSig::new(vec![], None));
        m.ret(None);
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::SelectorArityConflict { .. }));
    }

    #[test]
    fn multiple_constructors_rejected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        pb.trivial_ctor(c);
        let mut m = pb.ctor(c, vec![Ty::Int]);
        m.ret(None);
        m.build();
        let err = pb.finish().unwrap_err();
        assert!(matches!(err, VerifyError::MultipleConstructors { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::FallsOffEnd {
            method: "C::f".into(),
        };
        assert!(format!("{e}").contains("C::f"));
    }
}
