#![warn(missing_docs)]

//! # dchm-bytecode
//!
//! A register-based, Java-like bytecode and class model. This crate is the
//! substrate for the [CGO 2006 "Dynamic Class Hierarchy Mutation"]
//! reproduction: it models exactly the parts of the Java platform the paper's
//! technique depends on — single-inheritance class hierarchies with
//! interfaces, virtual/special/static/interface method invocation, static and
//! instance fields, constructors, and arrays.
//!
//! The instruction set is register-based (in the style of Dalvik/Lua) rather
//! than stack-based. The downstream optimizer ([`dchm-ir`]) and the mutation
//! engine only care about dataflow through fields and branches, which a
//! register ISA exposes directly.
//!
//! ## Quick tour
//!
//! ```
//! use dchm_bytecode::{ProgramBuilder, MethodSig, Ty, Value, CmpOp};
//!
//! let mut pb = ProgramBuilder::new();
//! let object = pb.class("Object").build();
//! let point = pb.class("Point").extends(object).build();
//! let x = pb.instance_field(point, "x", Ty::Int);
//!
//! // int getX() { return this.x; }
//! let mut m = pb.method(point, "getX", MethodSig::new(vec![], Some(Ty::Int)));
//! let r = m.reg();
//! m.get_field(r, m.this(), x);
//! m.ret(Some(r));
//! m.build();
//!
//! let program = pb.finish().expect("verifies");
//! assert_eq!(program.class(point).name, "Point");
//! ```
//!
//! [CGO 2006 "Dynamic Class Hierarchy Mutation"]: https://doi.org/10.1109/CGO.2006.13
//! [`dchm-ir`]: ../dchm_ir/index.html

pub mod asm;
pub mod asm_print;
pub mod builder;
pub mod class;
pub mod disasm;
pub mod ids;
pub mod instr;
pub mod loops;
pub mod program;
pub mod value;
pub mod verify;

pub use asm::{assemble, AsmError};
pub use asm_print::print_asm;
pub use builder::{ClassBuilder, MethodBuilder, ProgramBuilder};
pub use class::{ClassDef, FieldDef, MethodDef, MethodKind, MethodSig, Visibility};
pub use ids::{ClassId, FieldId, Label, MethodId, Reg, SelectorId};
pub use instr::{DBinOp, IBinOp, Instr, IntrinsicKind, Op};
pub use loops::{loop_nesting, LoopInfo};
pub use program::{Program, ResolvedCall};
pub use value::{CmpOp, ElemKind, Ty, Value};
pub use verify::{verify_program, verify_reachability, VerifyError};
