//! The linked program: classes, methods, fields, selector table and
//! hierarchy queries.

use crate::class::{ClassDef, FieldDef, MethodDef, MethodKind};
use crate::ids::{ClassId, FieldId, MethodId, SelectorId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of statically resolving a call site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedCall {
    /// The method that would run if dispatch happened on the named class.
    pub method: MethodId,
    /// The vtable slot used at run time, `None` for statically-bound calls.
    pub vslot: Option<u32>,
}

/// A complete, linked program.
///
/// Produced by [`crate::ProgramBuilder::finish`]; all layout (field slots,
/// vtables) has been computed and the bytecode has passed verification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Program {
    /// All classes, indexed by [`ClassId`].
    pub classes: Vec<ClassDef>,
    /// All methods, indexed by [`MethodId`].
    pub methods: Vec<MethodDef>,
    /// All fields, indexed by [`FieldId`].
    pub fields: Vec<FieldDef>,
    /// Interned selector names, indexed by [`SelectorId`].
    pub selectors: Vec<String>,
    /// The entry point (a static method), if one was set.
    pub entry: Option<MethodId>,
    /// Number of static field slots in the JTOC static area.
    pub num_static_slots: u32,
    /// Direct subclasses of each class (link-time computed).
    pub children: Vec<Vec<ClassId>>,
}

impl Program {
    /// The class definition for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// The method definition for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.index()]
    }

    /// The field definition for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.index()]
    }

    /// The name behind a selector.
    #[inline]
    pub fn selector_name(&self, sel: SelectorId) -> &str {
        &self.selectors[sel.index()]
    }

    /// Looks up a selector by name.
    pub fn selector(&self, name: &str) -> Option<SelectorId> {
        self.selectors
            .iter()
            .position(|s| s == name)
            .map(SelectorId::from_index)
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId::from_index)
    }

    /// Looks up a method by owner class and name.
    pub fn method_by_name(&self, class: ClassId, name: &str) -> Option<MethodId> {
        self.class(class)
            .methods
            .iter()
            .copied()
            .find(|&m| self.method(m).name == name)
    }

    /// Looks up a field by owner class and name.
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        self.class(class)
            .fields
            .iter()
            .copied()
            .find(|&f| self.field(f).name == name)
    }

    /// True if `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).super_class;
        }
        false
    }

    /// True if `class` (or a superclass) implements `iface` (transitively
    /// through interface extension).
    pub fn implements(&self, class: ClassId, iface: ClassId) -> bool {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &i in &self.class(c).interfaces {
                if i == iface || self.implements(i, iface) {
                    return true;
                }
            }
            if c == iface {
                return true;
            }
            cur = self.class(c).super_class;
        }
        false
    }

    /// True if an instance of `class` passes `instanceof target` — subclass
    /// or interface implementation.
    pub fn instance_of(&self, class: ClassId, target: ClassId) -> bool {
        if self.class(target).is_interface {
            self.implements(class, target)
        } else {
            self.is_subclass(class, target)
        }
    }

    /// Resolves virtual dispatch of `sel` on exact run-time class `class`.
    pub fn resolve_virtual(&self, class: ClassId, sel: SelectorId) -> Option<MethodId> {
        let c = self.class(class);
        c.vtable_slot(sel).map(|slot| c.vtable[slot as usize])
    }

    /// Resolves an `invokespecial`-style statically-bound call: searches
    /// `class` and then its superclasses for a concrete method named `sel`.
    pub fn resolve_special(&self, class: ClassId, sel: SelectorId) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &m in &self.class(c).methods {
                let md = self.method(m);
                if md.selector == sel && md.kind != MethodKind::Abstract {
                    return Some(m);
                }
            }
            cur = self.class(c).super_class;
        }
        None
    }

    /// All transitive subclasses of `class`, excluding `class` itself.
    pub fn all_subclasses(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = self.children[class.index()].clone();
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend(self.children[c.index()].iter().copied());
        }
        out
    }

    /// All concrete (non-interface) classes in the program.
    pub fn concrete_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_interface)
            .map(|(i, _)| ClassId::from_index(i))
    }

    /// Counts (classes, methods) like the paper's Table 1 (interfaces count
    /// as classes, abstract methods count as methods).
    pub fn table1_counts(&self) -> (usize, usize) {
        (self.classes.len(), self.methods.len())
    }

    /// Computes field slots, vtables and the subclass index.
    ///
    /// Called by [`crate::ProgramBuilder::finish`]; classes must form a
    /// forest (acyclic), which the verifier checks beforehand.
    pub(crate) fn link(&mut self) {
        let n = self.classes.len();
        self.children = vec![Vec::new(); n];
        for i in 0..n {
            if let Some(sup) = self.classes[i].super_class {
                self.children[sup.index()].push(ClassId::from_index(i));
            }
        }

        // Topological order: parents before children.
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        fn visit(
            i: usize,
            classes: &[ClassDef],
            visited: &mut [bool],
            order: &mut Vec<usize>,
        ) {
            if visited[i] {
                return;
            }
            if let Some(sup) = classes[i].super_class {
                visit(sup.index(), classes, visited, order);
            }
            visited[i] = true;
            order.push(i);
        }
        for i in 0..n {
            visit(i, &self.classes, &mut visited, &mut order);
        }

        // Assign static slots globally and instance slots per hierarchy.
        let mut static_slot = 0u32;
        for f in &mut self.fields {
            if f.is_static {
                f.slot = static_slot;
                static_slot += 1;
            }
        }
        self.num_static_slots = static_slot;

        for &i in &order {
            let (base_slots, base_fields, base_vtable, base_vslot) =
                match self.classes[i].super_class {
                    Some(sup) => {
                        let s = &self.classes[sup.index()];
                        (
                            s.instance_slots,
                            s.all_instance_fields.clone(),
                            s.vtable.clone(),
                            s.vslot.clone(),
                        )
                    }
                    None => (0, Vec::new(), Vec::new(), HashMap::new()),
                };

            let mut slot = base_slots;
            let mut all_fields = base_fields;
            for &fid in &self.classes[i].fields.clone() {
                if !self.fields[fid.index()].is_static {
                    self.fields[fid.index()].slot = slot;
                    all_fields.push(fid);
                    slot += 1;
                }
            }

            let mut vtable = base_vtable;
            let mut vslot = base_vslot;
            for &mid in &self.classes[i].methods.clone() {
                let md = &self.methods[mid.index()];
                if md.is_virtual() || md.kind == MethodKind::Abstract {
                    match vslot.get(&md.selector) {
                        Some(&s) => vtable[s as usize] = mid,
                        None => {
                            vslot.insert(md.selector, vtable.len() as u32);
                            vtable.push(mid);
                        }
                    }
                }
            }

            // Interface methods also claim vtable slots so that interface
            // dispatch can resolve through the implementing class's table.
            let ifaces = self.classes[i].interfaces.clone();
            for iface in ifaces {
                for &mid in &self.class(iface).methods.clone() {
                    let sel = self.methods[mid.index()].selector;
                    if let std::collections::hash_map::Entry::Vacant(e) = vslot.entry(sel) {
                        e.insert(vtable.len() as u32);
                        vtable.push(mid); // abstract fallback; concrete impl overrides above
                    }
                }
            }

            let c = &mut self.classes[i];
            c.instance_slots = slot;
            c.all_instance_fields = all_fields;
            c.vtable = vtable;
            c.vslot = vslot;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::class::MethodSig;
    use crate::value::Ty;

    /// Builds the paper's Figure 1 zoo skeleton (no method bodies needed).
    fn zoo() -> (crate::Program, Vec<crate::ClassId>) {
        let mut pb = ProgramBuilder::new();
        let zoo_animal = pb.class("ZooAnimal").build();
        let bear = pb.class("Bear").extends(zoo_animal).build();
        let cat = pb.class("Cat").extends(zoo_animal).build();
        let panda = pb.class("Panda").extends(bear).build();
        let polar = pb.class("Polar").extends(bear).build();
        let leopard = pb.class("Leopard").extends(cat).build();
        let p = pb.finish().unwrap();
        (p, vec![zoo_animal, bear, cat, panda, polar, leopard])
    }

    #[test]
    fn subclass_queries() {
        let (p, ids) = zoo();
        let [zoo_animal, bear, cat, panda, polar, leopard]: [crate::ClassId; 6] =
            ids.try_into().unwrap();
        assert!(p.is_subclass(panda, bear));
        assert!(p.is_subclass(panda, zoo_animal));
        assert!(p.is_subclass(bear, bear));
        assert!(!p.is_subclass(bear, panda));
        assert!(!p.is_subclass(leopard, bear));
        let mut subs = p.all_subclasses(bear);
        subs.sort();
        assert_eq!(subs, vec![panda, polar]);
        let mut all = p.all_subclasses(zoo_animal);
        all.sort();
        assert_eq!(all.len(), 5);
        assert!(!all.contains(&zoo_animal));
        assert!(p.instance_of(polar, zoo_animal));
        assert!(!p.instance_of(polar, cat));
    }

    #[test]
    fn field_layout_inherits_super_slots() {
        let mut pb = ProgramBuilder::new();
        let a = pb.class("A").build();
        let b = pb.class("B").extends(a).build();
        let fa = pb.instance_field(a, "x", Ty::Int);
        let fb1 = pb.instance_field(b, "y", Ty::Int);
        let fb2 = pb.instance_field(b, "z", Ty::Double);
        let fs = pb.static_field(a, "count", Ty::Int, 0i64.into());
        let p = pb.finish().unwrap();
        assert_eq!(p.field(fa).slot, 0);
        assert_eq!(p.field(fb1).slot, 1);
        assert_eq!(p.field(fb2).slot, 2);
        assert_eq!(p.class(a).instance_slots, 1);
        assert_eq!(p.class(b).instance_slots, 3);
        assert_eq!(p.field(fs).slot, 0);
        assert_eq!(p.num_static_slots, 1);
        assert_eq!(p.class(b).all_instance_fields, vec![fa, fb1, fb2]);
    }

    #[test]
    fn vtable_overriding() {
        let mut pb = ProgramBuilder::new();
        let a = pb.class("A").build();
        let b = pb.class("B").extends(a).build();

        let mut m = pb.method(a, "f", MethodSig::new(vec![], Some(Ty::Int)));
        let r = m.reg();
        m.const_i(r, 1);
        m.ret(Some(r));
        let mf_a = m.build();

        let mut m = pb.method(a, "g", MethodSig::new(vec![], Some(Ty::Int)));
        let r = m.reg();
        m.const_i(r, 2);
        m.ret(Some(r));
        let mg_a = m.build();

        let mut m = pb.method(b, "f", MethodSig::new(vec![], Some(Ty::Int)));
        let r = m.reg();
        m.const_i(r, 3);
        m.ret(Some(r));
        let mf_b = m.build();

        let p = pb.finish().unwrap();
        let sel_f = p.selector("f").unwrap();
        let sel_g = p.selector("g").unwrap();
        assert_eq!(p.resolve_virtual(a, sel_f), Some(mf_a));
        assert_eq!(p.resolve_virtual(b, sel_f), Some(mf_b));
        assert_eq!(p.resolve_virtual(b, sel_g), Some(mg_a));
        // Same selector shares the same slot in both tables.
        assert_eq!(
            p.class(a).vtable_slot(sel_f),
            p.class(b).vtable_slot(sel_f)
        );
        // invokespecial resolution from B finds B::f; from A finds A::f.
        assert_eq!(p.resolve_special(b, sel_f), Some(mf_b));
        assert_eq!(p.resolve_special(a, sel_f), Some(mf_a));
        assert_eq!(p.resolve_special(b, sel_g), Some(mg_a));
    }

    #[test]
    fn interface_implementation() {
        let mut pb = ProgramBuilder::new();
        let iface = pb.class("Runnable").interface().build();
        pb.abstract_method(iface, "run", MethodSig::void());
        let a = pb.class("A").implements(iface).build();
        let mut m = pb.method(a, "run", MethodSig::void());
        m.ret(None);
        let run_a = m.build();
        let p = pb.finish().unwrap();
        assert!(p.implements(a, iface));
        assert!(p.instance_of(a, iface));
        let sel = p.selector("run").unwrap();
        assert_eq!(p.resolve_virtual(a, sel), Some(run_a));
    }

    #[test]
    fn table1_counts_count_everything() {
        let (p, _) = zoo();
        let (c, m) = p.table1_counts();
        assert_eq!(c, 6);
        assert_eq!(m, 0);
    }
}
