//! Loop-nesting analysis on bytecode.
//!
//! The paper's EQ 1 weighs a state-field use/assignment by the loop nesting
//! level of the instruction it occurs at (`Li`/`li`). This module computes
//! that level for every instruction of a method: build the instruction-level
//! CFG, find back edges by DFS, expand each back edge to its natural loop,
//! and count how many loops contain each instruction.

use crate::instr::Instr;

/// Per-method loop information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopInfo {
    /// `nesting[i]` = number of natural loops containing instruction `i`.
    pub nesting: Vec<u32>,
    /// Number of distinct back edges (≈ number of loops).
    pub loop_count: usize,
}

impl LoopInfo {
    /// The deepest nesting level in the method.
    pub fn max_nesting(&self) -> u32 {
        self.nesting.iter().copied().max().unwrap_or(0)
    }
}

/// Successor instruction indices of instruction `i`.
fn successors(code: &[Instr], i: usize) -> Vec<usize> {
    match &code[i] {
        Instr::Jmp(t) => vec![t.index()],
        Instr::BrIf { target, .. } => {
            let mut v = vec![target.index()];
            if i + 1 < code.len() {
                v.push(i + 1);
            }
            v
        }
        Instr::Ret(_) => vec![],
        Instr::Op(_) => {
            if i + 1 < code.len() {
                vec![i + 1]
            } else {
                vec![]
            }
        }
    }
}

/// Computes loop nesting levels for a method body.
///
/// Instructions unreachable from entry get nesting 0.
pub fn loop_nesting(code: &[Instr]) -> LoopInfo {
    let n = code.len();
    let mut nesting = vec![0u32; n];
    if n == 0 {
        return LoopInfo {
            nesting,
            loop_count: 0,
        };
    }

    // Iterative DFS from instruction 0, collecting back edges
    // (edges into a node currently on the DFS stack).
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut back_edges: Vec<(usize, usize)> = Vec::new();
    // Stack of (node, next-successor-index).
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = Color::Gray;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        let succs = successors(code, u);
        if *next < succs.len() {
            let v = succs[*next];
            *next += 1;
            match color[v] {
                Color::White => {
                    color[v] = Color::Gray;
                    stack.push((v, 0));
                }
                Color::Gray => back_edges.push((u, v)),
                Color::Black => {}
            }
        } else {
            color[u] = Color::Black;
            stack.pop();
        }
    }

    // Natural loop of back edge (tail -> head): head plus all nodes that
    // reach tail without going through head (walk predecessors backwards).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for s in successors(code, i) {
            preds[s].push(i);
        }
    }
    let loop_count = back_edges.len();
    for &(tail, head) in &back_edges {
        let mut in_loop = vec![false; n];
        in_loop[head] = true;
        let mut work = vec![tail];
        while let Some(u) = work.pop() {
            if in_loop[u] {
                continue;
            }
            in_loop[u] = true;
            for &p in &preds[u] {
                if !in_loop[p] {
                    work.push(p);
                }
            }
        }
        for (i, &inside) in in_loop.iter().enumerate() {
            if inside {
                nesting[i] += 1;
            }
        }
    }

    LoopInfo {
        nesting,
        loop_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::MethodSig;
    use crate::value::{CmpOp, Ty};

    fn straight_line() -> Vec<Instr> {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        let r = m.reg();
        m.const_i(r, 1);
        m.sink_int(r);
        m.ret(None);
        let mid = m.build();
        pb.finish().unwrap().method(mid).code.clone()
    }

    #[test]
    fn straight_line_has_no_loops() {
        let info = loop_nesting(&straight_line());
        assert_eq!(info.loop_count, 0);
        assert!(info.nesting.iter().all(|&d| d == 0));
        assert_eq!(info.max_nesting(), 0);
    }

    #[test]
    fn single_loop_counts_once() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::new(vec![Ty::Int], None));
        let n = m.param(0);
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.br_icmp(CmpOp::Ge, i, n, done);
        m.sink_int(i);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(None);
        let mid = m.build();
        let p = pb.finish().unwrap();
        let info = loop_nesting(&p.method(mid).code);
        assert_eq!(info.loop_count, 1);
        assert_eq!(info.max_nesting(), 1);
        // First instruction (i = 0) is outside the loop.
        assert_eq!(info.nesting[0], 0);
        // The jump back is inside.
        let jmp_idx = p.method(mid).code.len() - 2;
        assert_eq!(info.nesting[jmp_idx], 1);
    }

    #[test]
    fn nested_loops_stack() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::new(vec![Ty::Int], None));
        let n = m.param(0);
        let i = m.reg();
        let j = m.reg();
        m.const_i(i, 0);
        let outer = m.label();
        let outer_done = m.label();
        m.bind(outer);
        m.br_icmp(CmpOp::Ge, i, n, outer_done);
        m.const_i(j, 0);
        let inner = m.label();
        let inner_done = m.label();
        m.bind(inner);
        m.br_icmp(CmpOp::Ge, j, n, inner_done);
        m.sink_int(j); // innermost body
        m.iadd_imm(j, j, 1);
        m.jmp(inner);
        m.bind(inner_done);
        m.iadd_imm(i, i, 1);
        m.jmp(outer);
        m.bind(outer_done);
        m.ret(None);
        let mid = m.build();
        let p = pb.finish().unwrap();
        let code = &p.method(mid).code;
        let info = loop_nesting(code);
        assert_eq!(info.loop_count, 2);
        assert_eq!(info.max_nesting(), 2);
        // Find the SinkInt op and check it's at depth 2.
        let sink_idx = code
            .iter()
            .position(|ins| {
                matches!(
                    ins,
                    Instr::Op(crate::Op::Intrinsic {
                        kind: crate::IntrinsicKind::SinkInt,
                        ..
                    })
                )
            })
            .unwrap();
        assert_eq!(info.nesting[sink_idx], 2);
    }

    #[test]
    fn empty_code() {
        let info = loop_nesting(&[]);
        assert_eq!(info.loop_count, 0);
        assert!(info.nesting.is_empty());
    }
}
