//! Fluent builders for programs, classes and method bodies.
//!
//! Workloads in `dchm-workloads` are written against this API; it plays the
//! role `javac` plays for the paper's benchmarks.

use crate::class::{ClassDef, FieldDef, MethodDef, MethodKind, MethodSig, Visibility};
use crate::ids::{ClassId, FieldId, Label, MethodId, Reg, SelectorId};
use crate::instr::{DBinOp, IBinOp, Instr, IntrinsicKind, Op};
use crate::program::Program;
use crate::value::{CmpOp, ElemKind, Ty, Value};
use crate::verify::{verify_program, VerifyError};
use std::collections::HashMap;

/// Name used for constructors, like the JVM's `<init>`.
pub const CTOR_NAME: &str = "<init>";

/// Incrementally builds a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<ClassDef>,
    methods: Vec<MethodDef>,
    fields: Vec<FieldDef>,
    selectors: Vec<String>,
    sel_map: HashMap<String, SelectorId>,
    entry: Option<MethodId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a class definition; call [`ClassBuilder::build`] to register it.
    pub fn class<'a>(&'a mut self, name: &str) -> ClassBuilder<'a> {
        ClassBuilder {
            pb: self,
            name: name.to_string(),
            package: "main".to_string(),
            super_class: None,
            interfaces: Vec::new(),
            is_interface: false,
        }
    }

    /// Interns a method selector.
    pub fn selector(&mut self, name: &str) -> SelectorId {
        if let Some(&s) = self.sel_map.get(name) {
            return s;
        }
        let id = SelectorId::from_index(self.selectors.len());
        self.selectors.push(name.to_string());
        self.sel_map.insert(name.to_string(), id);
        id
    }

    /// Declares an instance field with default (package) visibility.
    pub fn instance_field(&mut self, class: ClassId, name: &str, ty: Ty) -> FieldId {
        self.field_raw(class, name, ty, false, Visibility::Package, ty.default_value())
    }

    /// Declares a private instance field.
    pub fn private_field(&mut self, class: ClassId, name: &str, ty: Ty) -> FieldId {
        self.field_raw(class, name, ty, false, Visibility::Private, ty.default_value())
    }

    /// Declares a static field with an initial value.
    pub fn static_field(&mut self, class: ClassId, name: &str, ty: Ty, initial: Value) -> FieldId {
        self.field_raw(class, name, ty, true, Visibility::Package, initial)
    }

    /// Declares a field with full control over its attributes.
    pub fn field_raw(
        &mut self,
        class: ClassId,
        name: &str,
        ty: Ty,
        is_static: bool,
        visibility: Visibility,
        initial: Value,
    ) -> FieldId {
        let id = FieldId::from_index(self.fields.len());
        self.fields.push(FieldDef {
            name: name.to_string(),
            owner: class,
            ty,
            is_static,
            visibility,
            slot: 0,
            initial,
        });
        self.classes[class.index()].fields.push(id);
        id
    }

    /// Starts an instance method body.
    pub fn method<'a>(&'a mut self, class: ClassId, name: &str, sig: MethodSig) -> MethodBuilder<'a> {
        MethodBuilder::new(self, class, name, MethodKind::Instance, sig)
    }

    /// Starts a static method body.
    pub fn static_method<'a>(
        &'a mut self,
        class: ClassId,
        name: &str,
        sig: MethodSig,
    ) -> MethodBuilder<'a> {
        MethodBuilder::new(self, class, name, MethodKind::Static, sig)
    }

    /// Starts a constructor body.
    pub fn ctor<'a>(&'a mut self, class: ClassId, params: Vec<Ty>) -> MethodBuilder<'a> {
        MethodBuilder::new(
            self,
            class,
            CTOR_NAME,
            MethodKind::Constructor,
            MethodSig::new(params, None),
        )
    }

    /// Registers a trivial `<init>() { }` constructor and returns it.
    pub fn trivial_ctor(&mut self, class: ClassId) -> MethodId {
        let mut m = self.ctor(class, vec![]);
        m.ret(None);
        m.build()
    }

    /// Declares an abstract method on an interface.
    pub fn abstract_method(&mut self, iface: ClassId, name: &str, sig: MethodSig) -> MethodId {
        let selector = self.selector(name);
        let id = MethodId::from_index(self.methods.len());
        let nregs = 1 + sig.params.len();
        self.methods.push(MethodDef {
            name: name.to_string(),
            selector,
            owner: iface,
            kind: MethodKind::Abstract,
            visibility: Visibility::Public,
            sig,
            num_regs: nregs as u16,
            code: Vec::new(),
        });
        self.classes[iface.index()].methods.push(id);
        id
    }

    /// Sets the program entry point (must be a static method).
    pub fn set_entry(&mut self, m: MethodId) {
        self.entry = Some(m);
    }

    /// Links and verifies the program.
    ///
    /// # Errors
    /// Returns the first [`VerifyError`] found; the program is unusable then.
    pub fn finish(self) -> Result<Program, VerifyError> {
        let mut p = Program {
            classes: self.classes,
            methods: self.methods,
            fields: self.fields,
            selectors: self.selectors,
            entry: self.entry,
            num_static_slots: 0,
            children: Vec::new(),
        };
        verify_hierarchy(&p)?;
        p.link();
        verify_program(&p)?;
        Ok(p)
    }

    /// Like [`ProgramBuilder::finish`], but additionally rejects dead code
    /// ([`crate::verify::verify_reachability`]). Program generators and
    /// shrinkers use this so every emitted instruction is exercisable by
    /// the differential oracle; hand-written frontends keep the laxer
    /// [`ProgramBuilder::finish`].
    ///
    /// # Errors
    /// Returns the first [`VerifyError`] found, including
    /// [`VerifyError::UnreachableCode`].
    pub fn finish_strict(self) -> Result<Program, VerifyError> {
        let p = self.finish()?;
        crate::verify::verify_reachability(&p)?;
        Ok(p)
    }
}

fn verify_hierarchy(p: &Program) -> Result<(), VerifyError> {
    // Acyclicity: walk each chain with a step budget.
    for (i, c) in p.classes.iter().enumerate() {
        let mut cur = c.super_class;
        let mut steps = 0;
        while let Some(s) = cur {
            steps += 1;
            if steps > p.classes.len() {
                return Err(VerifyError::CyclicHierarchy {
                    class: p.classes[i].name.clone(),
                });
            }
            cur = p.classes[s.index()].super_class;
        }
    }
    Ok(())
}

/// Builds one class; created by [`ProgramBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    name: String,
    package: String,
    super_class: Option<ClassId>,
    interfaces: Vec<ClassId>,
    is_interface: bool,
}

impl<'a> ClassBuilder<'a> {
    /// Sets the superclass.
    pub fn extends(mut self, sup: ClassId) -> Self {
        self.super_class = Some(sup);
        self
    }

    /// Adds an implemented interface.
    pub fn implements(mut self, iface: ClassId) -> Self {
        self.interfaces.push(iface);
        self
    }

    /// Sets the package (controls `Package` visibility scope).
    pub fn package(mut self, pkg: &str) -> Self {
        self.package = pkg.to_string();
        self
    }

    /// Marks this as an interface.
    pub fn interface(mut self) -> Self {
        self.is_interface = true;
        self
    }

    /// Registers the class and returns its id.
    pub fn build(self) -> ClassId {
        let id = ClassId::from_index(self.pb.classes.len());
        self.pb.classes.push(ClassDef {
            name: self.name,
            package: self.package,
            super_class: self.super_class,
            interfaces: self.interfaces,
            is_interface: self.is_interface,
            methods: Vec::new(),
            fields: Vec::new(),
            vtable: Vec::new(),
            vslot: HashMap::new(),
            instance_slots: 0,
            all_instance_fields: Vec::new(),
        });
        id
    }
}

/// Builds one method body; created by [`ProgramBuilder::method`] and friends.
///
/// Registers `0..arg_count` hold the arguments (receiver first for instance
/// methods); [`MethodBuilder::reg`] allocates fresh temporaries above them.
/// Labels are forward-declarable with [`MethodBuilder::label`] and bound with
/// [`MethodBuilder::bind`]; [`MethodBuilder::build`] resolves them to
/// instruction indices.
#[derive(Debug)]
pub struct MethodBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    owner: ClassId,
    name: String,
    kind: MethodKind,
    visibility: Visibility,
    sig: MethodSig,
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    next_reg: u16,
}

impl<'a> MethodBuilder<'a> {
    fn new(
        pb: &'a mut ProgramBuilder,
        owner: ClassId,
        name: &str,
        kind: MethodKind,
        sig: MethodSig,
    ) -> Self {
        let has_recv = !matches!(kind, MethodKind::Static);
        let next_reg = (has_recv as usize + sig.params.len()) as u16;
        MethodBuilder {
            pb,
            owner,
            name: name.to_string(),
            kind,
            visibility: Visibility::Public,
            sig,
            code: Vec::new(),
            labels: Vec::new(),
            next_reg,
        }
    }

    /// Marks the method private (statically bound).
    pub fn private(&mut self) -> &mut Self {
        self.visibility = Visibility::Private;
        self
    }

    /// Sets an explicit visibility.
    pub fn visibility(&mut self, v: Visibility) -> &mut Self {
        self.visibility = v;
        self
    }

    /// The receiver register (`this`).
    ///
    /// # Panics
    /// Panics for static methods.
    pub fn this(&self) -> Reg {
        assert!(
            !matches!(self.kind, MethodKind::Static),
            "static methods have no receiver"
        );
        Reg(0)
    }

    /// The register holding parameter `i` (0-based, excluding the receiver).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.sig.params.len(), "parameter index out of range");
        let base = !matches!(self.kind, MethodKind::Static) as usize;
        Reg((base + i) as u16)
    }

    /// Allocates a fresh temporary register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self.next_reg.checked_add(1).expect("register overflow");
        r
    }

    /// Current frame size (registers allocated so far, parameters included).
    pub fn reg_count(&self) -> u16 {
        self.next_reg
    }

    /// Grows the frame to at least `n` registers (used by the assembler,
    /// where register indices appear literally in the source).
    pub fn ensure_regs(&mut self, n: u16) {
        self.next_reg = self.next_reg.max(n);
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.index()];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u32);
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// Emits a raw op.
    pub fn op(&mut self, op: Op) {
        self.code.push(Instr::Op(op));
    }

    // ---- constants & moves ----

    /// `dst = val`
    pub fn const_i(&mut self, dst: Reg, val: i64) {
        self.op(Op::ConstI { dst, val });
    }

    /// Fresh register holding `val`.
    pub fn imm(&mut self, val: i64) -> Reg {
        let r = self.reg();
        self.const_i(r, val);
        r
    }

    /// `dst = val`
    pub fn const_d(&mut self, dst: Reg, val: f64) {
        self.op(Op::ConstD { dst, val });
    }

    /// Fresh register holding `val`.
    pub fn imm_d(&mut self, val: f64) -> Reg {
        let r = self.reg();
        self.const_d(r, val);
        r
    }

    /// `dst = null`
    pub fn const_null(&mut self, dst: Reg) {
        self.op(Op::ConstNull { dst });
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.op(Op::Mov { dst, src });
    }

    // ---- arithmetic ----

    /// `dst = a <op> b` (integers)
    pub fn ibin(&mut self, op: IBinOp, dst: Reg, a: Reg, b: Reg) {
        self.op(Op::IBin { op, dst, a, b });
    }

    /// `dst = a + b`
    pub fn iadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.ibin(IBinOp::Add, dst, a, b);
    }

    /// `dst = a - b`
    pub fn isub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.ibin(IBinOp::Sub, dst, a, b);
    }

    /// `dst = a * b`
    pub fn imul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.ibin(IBinOp::Mul, dst, a, b);
    }

    /// `dst = a / b`
    pub fn idiv(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.ibin(IBinOp::Div, dst, a, b);
    }

    /// `dst = a % b`
    pub fn irem(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.ibin(IBinOp::Rem, dst, a, b);
    }

    /// `dst = a + imm`
    pub fn iadd_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        let t = self.imm(imm);
        self.iadd(dst, a, t);
    }

    /// `dst = -a`
    pub fn ineg(&mut self, dst: Reg, a: Reg) {
        self.op(Op::INeg { dst, a });
    }

    /// `dst = a <op> b` (doubles)
    pub fn dbin(&mut self, op: DBinOp, dst: Reg, a: Reg, b: Reg) {
        self.op(Op::DBin { op, dst, a, b });
    }

    /// `dst = a + b` (doubles)
    pub fn dadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.dbin(DBinOp::Add, dst, a, b);
    }

    /// `dst = a - b` (doubles)
    pub fn dsub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.dbin(DBinOp::Sub, dst, a, b);
    }

    /// `dst = a * b` (doubles)
    pub fn dmul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.dbin(DBinOp::Mul, dst, a, b);
    }

    /// `dst = a / b` (doubles)
    pub fn ddiv(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.dbin(DBinOp::Div, dst, a, b);
    }

    /// `dst = (double) a`
    pub fn i2d(&mut self, dst: Reg, a: Reg) {
        self.op(Op::I2D { dst, a });
    }

    /// `dst = (long) a`
    pub fn d2i(&mut self, dst: Reg, a: Reg) {
        self.op(Op::D2I { dst, a });
    }

    // ---- comparisons ----

    /// `dst = a <op> b` (integers)
    pub fn icmp(&mut self, op: CmpOp, dst: Reg, a: Reg, b: Reg) {
        self.op(Op::ICmp { op, dst, a, b });
    }

    /// `dst = a <op> b` (doubles)
    pub fn dcmp(&mut self, op: CmpOp, dst: Reg, a: Reg, b: Reg) {
        self.op(Op::DCmp { op, dst, a, b });
    }

    /// `dst = (a == b)` for references.
    pub fn ref_eq(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.op(Op::RefEq { dst, a, b });
    }

    // ---- control flow ----

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) {
        self.emit(Instr::Jmp(target));
    }

    /// Branch to `target` if `cond != 0`.
    pub fn br_if(&mut self, cond: Reg, target: Label) {
        self.emit(Instr::BrIf { cond, target });
    }

    /// Branch to `target` if `a <op> b` (integers).
    pub fn br_icmp(&mut self, op: CmpOp, a: Reg, b: Reg, target: Label) {
        let t = self.reg();
        self.icmp(op, t, a, b);
        self.br_if(t, target);
    }

    /// Branch to `target` if `a <op> imm` (integers).
    pub fn br_icmp_imm(&mut self, op: CmpOp, a: Reg, imm: i64, target: Label) {
        let b = self.imm(imm);
        self.br_icmp(op, a, b, target);
    }

    /// Return with an optional value.
    pub fn ret(&mut self, val: Option<Reg>) {
        self.emit(Instr::Ret(val));
    }

    // ---- objects ----

    /// `dst = new class` (uninitialized; follow with [`Self::call_ctor`]).
    pub fn new_obj(&mut self, dst: Reg, class: ClassId) {
        self.op(Op::New { dst, class });
    }

    /// `dst = obj.field`
    pub fn get_field(&mut self, dst: Reg, obj: Reg, field: FieldId) {
        self.op(Op::GetField { dst, obj, field });
    }

    /// `obj.field = src`
    pub fn put_field(&mut self, obj: Reg, field: FieldId, src: Reg) {
        self.op(Op::PutField { obj, field, src });
    }

    /// `dst = Class.field`
    pub fn get_static(&mut self, dst: Reg, field: FieldId) {
        self.op(Op::GetStatic { dst, field });
    }

    /// `Class.field = src`
    pub fn put_static(&mut self, field: FieldId, src: Reg) {
        self.op(Op::PutStatic { field, src });
    }

    /// Virtual call `dst = obj.name(args)`.
    pub fn call_virtual(&mut self, dst: Option<Reg>, obj: Reg, name: &str, args: Vec<Reg>) {
        let sel = self.pb.selector(name);
        self.op(Op::CallVirtual {
            dst,
            sel,
            obj,
            args,
        });
    }

    /// Statically-bound call (`invokespecial`): `dst = class::name(obj, args)`.
    pub fn call_special(
        &mut self,
        dst: Option<Reg>,
        class: ClassId,
        name: &str,
        obj: Reg,
        args: Vec<Reg>,
    ) {
        let sel = self.pb.selector(name);
        self.op(Op::CallSpecial {
            dst,
            class,
            sel,
            obj,
            args,
        });
    }

    /// Constructor invocation `class::<init>(obj, args)`.
    pub fn call_ctor(&mut self, obj: Reg, class: ClassId, args: Vec<Reg>) {
        self.call_special(None, class, CTOR_NAME, obj, args);
    }

    /// `dst = new class(args)` — allocation plus constructor call.
    pub fn new_init(&mut self, dst: Reg, class: ClassId, args: Vec<Reg>) {
        self.new_obj(dst, class);
        self.call_ctor(dst, class, args);
    }

    /// Static call `dst = method(args)`.
    pub fn call_static(&mut self, dst: Option<Reg>, method: MethodId, args: Vec<Reg>) {
        self.op(Op::CallStatic { dst, method, args });
    }

    /// Interface call `dst = ((iface) obj).name(args)`.
    pub fn call_interface(
        &mut self,
        dst: Option<Reg>,
        iface: ClassId,
        obj: Reg,
        name: &str,
        args: Vec<Reg>,
    ) {
        let sel = self.pb.selector(name);
        self.op(Op::CallInterface {
            dst,
            iface,
            sel,
            obj,
            args,
        });
    }

    /// `dst = obj instanceof class`
    pub fn instance_of(&mut self, dst: Reg, obj: Reg, class: ClassId) {
        self.op(Op::InstanceOf { dst, obj, class });
    }

    /// `(class) obj` — traps if incompatible.
    pub fn check_cast(&mut self, obj: Reg, class: ClassId) {
        self.op(Op::CheckCast { obj, class });
    }

    // ---- arrays ----

    /// `dst = new kind[len]`
    pub fn new_arr(&mut self, dst: Reg, kind: ElemKind, len: Reg) {
        self.op(Op::NewArr { dst, kind, len });
    }

    /// `dst = arr[idx]`
    pub fn aload(&mut self, dst: Reg, arr: Reg, idx: Reg) {
        self.op(Op::ALoad { dst, arr, idx });
    }

    /// `arr[idx] = src`
    pub fn astore(&mut self, arr: Reg, idx: Reg, src: Reg) {
        self.op(Op::AStore { arr, idx, src });
    }

    /// `dst = arr.length`
    pub fn alen(&mut self, dst: Reg, arr: Reg) {
        self.op(Op::ALen { dst, arr });
    }

    // ---- intrinsics ----

    /// Emits an intrinsic.
    pub fn intrinsic(&mut self, dst: Option<Reg>, kind: IntrinsicKind, args: Vec<Reg>) {
        self.op(Op::Intrinsic { dst, kind, args });
    }

    /// Prints an integer to the VM output log.
    pub fn print_int(&mut self, src: Reg) {
        self.intrinsic(None, IntrinsicKind::PrintInt, vec![src]);
    }

    /// Folds an integer into the VM output checksum.
    pub fn sink_int(&mut self, src: Reg) {
        self.intrinsic(None, IntrinsicKind::SinkInt, vec![src]);
    }

    /// Folds a double into the VM output checksum.
    pub fn sink_double(&mut self, src: Reg) {
        self.intrinsic(None, IntrinsicKind::SinkDouble, vec![src]);
    }

    /// `dst = sqrt(a)`
    pub fn dsqrt(&mut self, dst: Reg, a: Reg) {
        self.intrinsic(Some(dst), IntrinsicKind::DSqrt, vec![a]);
    }

    /// Resolves labels and registers the method; returns its id.
    ///
    /// # Panics
    /// Panics if any used label was never bound.
    pub fn build(self) -> MethodId {
        let MethodBuilder {
            pb,
            owner,
            name,
            kind,
            visibility,
            sig,
            mut code,
            labels,
            next_reg,
        } = self;

        // Labels created via `label()` are resolved to instruction indices.
        // Raw labels beyond the builder's table (from `emit` of pre-resolved
        // code) pass through untouched and are range-checked by the verifier.
        let resolve = |l: Label| -> Label {
            match labels.get(l.index()) {
                Some(Some(pc)) => Label(*pc),
                Some(None) => panic!("unbound label {l}"),
                None => l,
            }
        };
        for instr in &mut code {
            match instr {
                Instr::Jmp(t) => *t = resolve(*t),
                Instr::BrIf { target, .. } => *target = resolve(*target),
                _ => {}
            }
        }

        let selector = pb.selector(&name);
        let id = MethodId::from_index(pb.methods.len());
        pb.methods.push(MethodDef {
            name,
            selector,
            owner,
            kind,
            visibility,
            sig,
            num_regs: next_reg,
            code,
        });
        pb.classes[owner.index()].methods.push(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "loop", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        let n = m.param(0);
        let acc = m.reg();
        let i = m.reg();
        m.const_i(acc, 0);
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.br_icmp(CmpOp::Ge, i, n, done);
        m.iadd(acc, acc, i);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(Some(acc));
        let mid = m.build();
        let p = pb.finish().unwrap();
        let md = p.method(mid);
        // Backward jump goes to the bound position of `head` (instr 2).
        let mut saw_back_jump = false;
        for instr in &md.code {
            if let Instr::Jmp(t) = instr {
                assert_eq!(t.index(), 2);
                saw_back_jump = true;
            }
        }
        assert!(saw_back_jump);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        let l = m.label();
        m.jmp(l);
        m.build();
    }

    #[test]
    fn params_and_this() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let m = pb.method(c, "f", MethodSig::new(vec![Ty::Int, Ty::Int], None));
        assert_eq!(m.this(), Reg(0));
        assert_eq!(m.param(0), Reg(1));
        assert_eq!(m.param(1), Reg(2));

        let m = pb.static_method(c, "g", MethodSig::new(vec![Ty::Int], None));
        assert_eq!(m.param(0), Reg(0));
    }

    #[test]
    #[should_panic(expected = "no receiver")]
    fn static_this_panics() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let m = pb.static_method(c, "g", MethodSig::void());
        let _ = m.this();
    }

    #[test]
    fn reg_count_and_ensure_regs() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.method(c, "f", MethodSig::new(vec![Ty::Int], None));
        assert_eq!(m.reg_count(), 2); // this + param
        m.ensure_regs(10);
        assert_eq!(m.reg_count(), 10);
        assert_eq!(m.reg(), Reg(10));
        m.ensure_regs(4); // never shrinks
        assert_eq!(m.reg_count(), 11);
        m.ret(None);
        m.build();
    }

    #[test]
    fn trivial_ctor_builds() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let ctor = pb.trivial_ctor(c);
        let p = pb.finish().unwrap();
        assert_eq!(p.method(ctor).kind, MethodKind::Constructor);
        assert_eq!(p.method(ctor).name, CTOR_NAME);
    }
}
