//! Class, method and field definitions.

use crate::ids::{ClassId, FieldId, MethodId, SelectorId};
use crate::instr::Instr;
use crate::value::{Ty, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Java-style member visibility (simplified: no `protected`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Visibility {
    /// Visible everywhere.
    Public,
    /// Visible within the declaring "package" (we model one package per
    /// top-level workload component; see [`crate::ClassDef::package`]).
    Package,
    /// Visible only inside the declaring class.
    Private,
}

/// What kind of method this is; determines dispatch and frame layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MethodKind {
    /// Ordinary instance method, dispatched virtually unless private.
    Instance,
    /// Static method, dispatched through the JTOC.
    Static,
    /// Instance initializer, always invoked with `CallSpecial`.
    Constructor,
    /// Abstract declaration on an interface (no body).
    Abstract,
}

/// A method signature: parameter types (excluding the receiver) and the
/// optional return type.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MethodSig {
    /// Parameter types, excluding the receiver.
    pub params: Vec<Ty>,
    /// Return type; `None` models `void`.
    pub ret: Option<Ty>,
}

impl MethodSig {
    /// Creates a signature.
    pub fn new(params: Vec<Ty>, ret: Option<Ty>) -> Self {
        MethodSig { params, ret }
    }

    /// A `void f()` signature.
    pub fn void() -> Self {
        MethodSig {
            params: vec![],
            ret: None,
        }
    }
}

/// A field definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name (unique within its class).
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// Declared type.
    pub ty: Ty,
    /// True for `static` fields.
    pub is_static: bool,
    /// Member visibility.
    pub visibility: Visibility,
    /// Storage slot: offset into the object's field vector for instance
    /// fields, or into the JTOC static area for static fields. Assigned at
    /// link time by [`crate::ProgramBuilder::finish`].
    pub slot: u32,
    /// Initial value for static fields (instance fields zero-init and are
    /// then set by constructors).
    pub initial: Value,
}

/// A method definition with its bytecode body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// Interned selector for `name`; virtual dispatch matches selectors.
    pub selector: SelectorId,
    /// Declaring class.
    pub owner: ClassId,
    /// Kind (instance/static/constructor/abstract).
    pub kind: MethodKind,
    /// Member visibility. Private instance methods are statically bound.
    pub visibility: Visibility,
    /// Signature.
    pub sig: MethodSig,
    /// Number of virtual registers the body uses (params included).
    pub num_regs: u16,
    /// Bytecode body (empty for `Abstract`).
    pub code: Vec<Instr>,
}

impl MethodDef {
    /// Number of frame slots occupied by arguments on entry (receiver
    /// included for instance methods/constructors).
    pub fn arg_count(&self) -> usize {
        let recv = match self.kind {
            MethodKind::Instance | MethodKind::Constructor | MethodKind::Abstract => 1,
            MethodKind::Static => 0,
        };
        recv + self.sig.params.len()
    }

    /// True if this method takes a receiver.
    pub fn has_receiver(&self) -> bool {
        !matches!(self.kind, MethodKind::Static)
    }

    /// True if virtual dispatch applies (instance, non-private).
    pub fn is_virtual(&self) -> bool {
        matches!(self.kind, MethodKind::Instance) && self.visibility != Visibility::Private
    }
}

/// A class or interface definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassDef {
    /// Class name (unique within the program).
    pub name: String,
    /// Package name; `Package` visibility is scoped to this.
    pub package: String,
    /// Superclass; `None` only for the hierarchy root(s).
    pub super_class: Option<ClassId>,
    /// Implemented interfaces (directly declared).
    pub interfaces: Vec<ClassId>,
    /// True for interfaces (no fields, abstract methods only).
    pub is_interface: bool,
    /// Methods declared by this class (not inherited ones).
    pub methods: Vec<MethodId>,
    /// Fields declared by this class (not inherited ones).
    pub fields: Vec<FieldId>,

    // ---- link-time computed ----
    /// Virtual method table: `vtable[slot]` is the implementation this class
    /// uses for the selector assigned to `slot`. Mirrors a Jikes TIB's
    /// method portion.
    pub vtable: Vec<MethodId>,
    /// Selector -> vtable slot for this class.
    pub vslot: HashMap<SelectorId, u32>,
    /// Total number of instance field slots including inherited ones.
    pub instance_slots: u32,
    /// All instance fields in slot order, inherited first.
    pub all_instance_fields: Vec<FieldId>,
}

impl ClassDef {
    /// vtable slot for `sel`, if the class (or a superclass) declares it.
    pub fn vtable_slot(&self, sel: SelectorId) -> Option<u32> {
        self.vslot.get(&sel).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_void() {
        let s = MethodSig::void();
        assert!(s.params.is_empty());
        assert!(s.ret.is_none());
    }

    #[test]
    fn arg_count_counts_receiver() {
        let m = MethodDef {
            name: "f".into(),
            selector: SelectorId(0),
            owner: ClassId(0),
            kind: MethodKind::Instance,
            visibility: Visibility::Public,
            sig: MethodSig::new(vec![Ty::Int, Ty::Double], Some(Ty::Int)),
            num_regs: 3,
            code: vec![],
        };
        assert_eq!(m.arg_count(), 3);
        assert!(m.has_receiver());
        assert!(m.is_virtual());

        let s = MethodDef {
            kind: MethodKind::Static,
            ..m.clone()
        };
        assert_eq!(s.arg_count(), 2);
        assert!(!s.has_receiver());
        assert!(!s.is_virtual());

        let p = MethodDef {
            visibility: Visibility::Private,
            ..m
        };
        assert!(!p.is_virtual());
    }
}
