//! Human-readable disassembly of bytecode.

use crate::instr::{Instr, Op};
use crate::program::Program;
use crate::ids::MethodId;
use std::fmt;
use std::fmt::Write as _;

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::ConstI { dst, val } => write!(f, "{dst} = const {val}"),
            Op::ConstD { dst, val } => write!(f, "{dst} = const {val}"),
            Op::ConstNull { dst } => write!(f, "{dst} = null"),
            Op::Mov { dst, src } => write!(f, "{dst} = {src}"),
            Op::IBin { op, dst, a, b } => write!(f, "{dst} = {a} {op:?} {b}"),
            Op::INeg { dst, a } => write!(f, "{dst} = ineg {a}"),
            Op::DBin { op, dst, a, b } => write!(f, "{dst} = {a} d{op:?} {b}"),
            Op::DNeg { dst, a } => write!(f, "{dst} = dneg {a}"),
            Op::I2D { dst, a } => write!(f, "{dst} = i2d {a}"),
            Op::D2I { dst, a } => write!(f, "{dst} = d2i {a}"),
            Op::ICmp { op, dst, a, b } => write!(f, "{dst} = {a} {op} {b}"),
            Op::DCmp { op, dst, a, b } => write!(f, "{dst} = {a} d{op} {b}"),
            Op::RefEq { dst, a, b } => write!(f, "{dst} = refeq {a}, {b}"),
            Op::New { dst, class } => write!(f, "{dst} = new {class}"),
            Op::GetField { dst, obj, field } => write!(f, "{dst} = {obj}.{field}"),
            Op::PutField { obj, field, src } => write!(f, "{obj}.{field} = {src}"),
            Op::GetStatic { dst, field } => write!(f, "{dst} = static {field}"),
            Op::PutStatic { field, src } => write!(f, "static {field} = {src}"),
            Op::CallVirtual { dst, sel, obj, args } => {
                write_call(f, *dst, &format!("virtual {obj}.{sel}"), args)
            }
            Op::CallSpecial {
                dst,
                class,
                sel,
                obj,
                args,
            } => write_call(f, *dst, &format!("special {class}::{sel}({obj})"), args),
            Op::CallStatic { dst, method, args } => {
                write_call(f, *dst, &format!("static {method}"), args)
            }
            Op::CallInterface {
                dst,
                iface,
                sel,
                obj,
                args,
            } => write_call(f, *dst, &format!("interface {iface}::{sel}({obj})"), args),
            Op::InstanceOf { dst, obj, class } => {
                write!(f, "{dst} = {obj} instanceof {class}")
            }
            Op::CheckCast { obj, class } => write!(f, "checkcast {obj} as {class}"),
            Op::NewArr { dst, kind, len } => write!(f, "{dst} = new {kind}[{len}]"),
            Op::ALoad { dst, arr, idx } => write!(f, "{dst} = {arr}[{idx}]"),
            Op::AStore { arr, idx, src } => write!(f, "{arr}[{idx}] = {src}"),
            Op::ALen { dst, arr } => write!(f, "{dst} = len {arr}"),
            Op::Intrinsic { dst, kind, args } => {
                write_call(f, *dst, &format!("intrinsic {kind:?}"), args)
            }
            Op::NotifyCtorExit { obj, class } => write!(f, "notify-ctor-exit {obj} : {class}"),
            Op::NotifyInstStore { obj, class, field } => {
                write!(f, "notify-inst-store {obj}.{field} : {class}")
            }
            Op::NotifyStaticStore { field } => write!(f, "notify-static-store {field}"),
            Op::GuardState {
                obj,
                instance,
                statics,
                guard,
                live_prefix,
            } => {
                write!(f, "guard-state")?;
                if let Some(o) = obj {
                    write!(f, " {o}")?;
                }
                for (fid, v) in instance {
                    write!(f, " {fid}=={v}")?;
                }
                for (fid, v) in statics {
                    write!(f, " static {fid}=={v}")?;
                }
                write!(f, " else deopt#{guard} (live r0..r{live_prefix})")
            }
        }
    }
}

fn write_call(
    f: &mut fmt::Formatter<'_>,
    dst: Option<crate::ids::Reg>,
    what: &str,
    args: &[crate::ids::Reg],
) -> fmt::Result {
    if let Some(d) = dst {
        write!(f, "{d} = ")?;
    }
    write!(f, "call {what}(")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    write!(f, ")")
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Op(op) => write!(f, "{op}"),
            Instr::Jmp(t) => write!(f, "jmp {t}"),
            Instr::BrIf { cond, target } => write!(f, "br_if {cond} -> {target}"),
            Instr::Ret(Some(r)) => write!(f, "ret {r}"),
            Instr::Ret(None) => write!(f, "ret"),
        }
    }
}

/// Disassembles one method with resolved names.
pub fn disasm_method(p: &Program, mid: MethodId) -> String {
    let m = p.method(mid);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}::{} [{:?}, {} regs, {} instrs]",
        p.class(m.owner).name,
        m.name,
        m.kind,
        m.num_regs,
        m.code.len()
    );
    for (i, instr) in m.code.iter().enumerate() {
        let _ = writeln!(out, "  {i:4}: {instr}");
    }
    out
}

/// Disassembles the whole program.
pub fn disasm_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, _) in p.methods.iter().enumerate() {
        out.push_str(&disasm_method(p, MethodId::from_index(i)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::class::MethodSig;

    #[test]
    fn disasm_contains_names_and_indices() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Widget").build();
        let mut m = pb.static_method(c, "main", MethodSig::void());
        let r = m.reg();
        m.const_i(r, 42);
        m.print_int(r);
        m.ret(None);
        let mid = m.build();
        let p = pb.finish().unwrap();
        let s = super::disasm_method(&p, mid);
        assert!(s.contains("Widget::main"));
        assert!(s.contains("const 42"));
        assert!(s.contains("PrintInt"));
        let full = super::disasm_program(&p);
        assert!(full.contains("Widget::main"));
    }
}
