//! Runtime values, primitive types and comparison operators.

use crate::ids::ClassId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A heap object reference. The VM interprets this as a handle into its
/// object store; the bytecode layer treats it as opaque.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ObjRef(pub u32);

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// The static type of a field, parameter or return value.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer (models Java's int/long/char/boolean).
    Int,
    /// 64-bit IEEE float (models Java's float/double).
    Double,
    /// Reference to an instance of `ClassId` or any subclass, or null.
    Ref(ClassId),
    /// Reference to an array of the given element kind, or null.
    Arr(ElemKind),
}

impl Ty {
    /// The default (zero) value of this type, used to initialize fields.
    pub fn default_value(self) -> Value {
        match self {
            Ty::Int => Value::Int(0),
            Ty::Double => Value::Double(0.0),
            Ty::Ref(_) | Ty::Arr(_) => Value::Null,
        }
    }

    /// True if values of this type are references the GC must trace.
    pub fn is_ref(self) -> bool {
        matches!(self, Ty::Ref(_) | Ty::Arr(_))
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Double => write!(f, "double"),
            Ty::Ref(c) => write!(f, "ref({c})"),
            Ty::Arr(k) => write!(f, "{k}[]"),
        }
    }
}

/// Array element kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ElemKind {
    /// 64-bit integers.
    Int,
    /// 64-bit floats.
    Double,
    /// Object references.
    Ref,
}

impl fmt::Display for ElemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemKind::Int => write!(f, "int"),
            ElemKind::Double => write!(f, "double"),
            ElemKind::Ref => write!(f, "ref"),
        }
    }
}

/// A dynamically-typed runtime value.
///
/// `Value` is what registers, fields and array slots hold at run time.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Double(f64),
    /// Non-null object or array reference.
    Ref(ObjRef),
    /// The null reference.
    Null,
}

impl Value {
    /// Extracts an integer.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Int`]; bytecode verification makes
    /// this unreachable for verified programs.
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Extracts a float.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Double`].
    #[inline]
    pub fn as_double(self) -> f64 {
        match self {
            Value::Double(v) => v,
            other => panic!("expected double, found {other:?}"),
        }
    }

    /// Extracts an object reference, or `None` for null.
    ///
    /// # Panics
    /// Panics if the value is an `Int` or `Double`.
    #[inline]
    pub fn as_ref_opt(self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(r),
            Value::Null => None,
            other => panic!("expected reference, found {other:?}"),
        }
    }

    /// True for `Ref`/`Null` values.
    #[inline]
    pub fn is_reference(self) -> bool {
        matches!(self, Value::Ref(_) | Value::Null)
    }

    /// Structural equality usable as a key: integers compare by value,
    /// doubles by bit pattern (so `NaN == NaN` here), references by handle.
    pub fn key_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Ref(a), Value::Ref(b)) => a == b,
            (Value::Null, Value::Null) => true,
            _ => false,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Ref(r) => write!(f, "{r}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

/// Comparison operators used by compare instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the operator to two integers.
    #[inline]
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Applies the operator to two floats (IEEE semantics: comparisons with
    /// NaN are false, so `Ne` with NaN is true).
    #[inline]
    pub fn eval_double(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The operator with operands swapped (`a op b` == `b op.swapped() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the operator.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values_match_types() {
        assert_eq!(Ty::Int.default_value(), Value::Int(0));
        assert_eq!(Ty::Double.default_value(), Value::Double(0.0));
        assert_eq!(Ty::Ref(ClassId(0)).default_value(), Value::Null);
        assert_eq!(Ty::Arr(ElemKind::Int).default_value(), Value::Null);
    }

    #[test]
    fn cmp_int_all_ops() {
        assert!(CmpOp::Eq.eval_int(1, 1));
        assert!(CmpOp::Ne.eval_int(1, 2));
        assert!(CmpOp::Lt.eval_int(1, 2));
        assert!(CmpOp::Le.eval_int(2, 2));
        assert!(CmpOp::Gt.eval_int(3, 2));
        assert!(CmpOp::Ge.eval_int(2, 2));
        assert!(!CmpOp::Lt.eval_int(2, 2));
    }

    #[test]
    fn cmp_double_nan_semantics() {
        assert!(!CmpOp::Eq.eval_double(f64::NAN, f64::NAN));
        assert!(CmpOp::Ne.eval_double(f64::NAN, 0.0));
        assert!(!CmpOp::Lt.eval_double(f64::NAN, 0.0));
    }

    #[test]
    fn swapped_and_negated_are_consistent() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for a in -2..3i64 {
                for b in -2..3i64 {
                    assert_eq!(op.eval_int(a, b), op.swapped().eval_int(b, a));
                    assert_eq!(op.eval_int(a, b), !op.negated().eval_int(a, b));
                }
            }
        }
    }

    #[test]
    fn key_eq_treats_nan_as_equal() {
        assert!(Value::Double(f64::NAN).key_eq(Value::Double(f64::NAN)));
        assert!(!Value::Double(0.0).key_eq(Value::Int(0)));
        assert!(Value::Null.key_eq(Value::Null));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::Double(2.5).as_double(), 2.5);
        assert_eq!(Value::Null.as_ref_opt(), None);
        assert_eq!(Value::Ref(ObjRef(3)).as_ref_opt(), Some(ObjRef(3)));
        assert!(Value::Null.is_reference());
        assert!(!Value::Int(1).is_reference());
    }
}
