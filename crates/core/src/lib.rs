#![warn(missing_docs)]

//! # dchm-core
//!
//! The paper's contribution: **dynamic class hierarchy mutation**
//! (Su & Lipasti, CGO 2006), implemented against the runtime mechanisms of
//! the `dchm-vm` crate.
//!
//! The pieces map to the paper's sections:
//!
//! * [`analysis`] — offline static analysis: EQ 1 state-field scoring over
//!   branch uses and assignments, weighted by loop nesting and method
//!   hotness (Sec. 3.1), plus hot-state derivation from value histograms.
//! * [`plan`] — the [`plan::MutationPlan`] handed to the VM at startup:
//!   mutable classes, their state fields, hot states and mutable methods.
//! * [`engine`] — the online half: the *distributed dynamic class mutation
//!   algorithm* of Figures 4 and 5, driving special-TIB creation, object
//!   TIB-pointer flips at constructor exits and state-field assignments,
//!   special-code generation at opt2 recompilation, and JTOC/class-TIB
//!   patching for static state.
//! * [`olc`] — object-lifetime-constant analysis (Sec. 4, Fig. 8).
//! * [`pipeline`] — the end-to-end driver of Figure 3: profile, analyze,
//!   plan, attach.
//! * [`online`] — the paper's future work implemented: a session that
//!   profiles, analyzes and installs mutation *while the VM keeps running*.
//!
//! ```no_run
//! use dchm_core::pipeline::{prepare, PipelineConfig};
//! use dchm_vm::VmConfig;
//! # fn program() -> dchm_bytecode::Program { unimplemented!() }
//!
//! let prepared = prepare(program(), &PipelineConfig::default(), |vm| {
//!     vm.run_entry().unwrap();
//! });
//! let mut vm = prepared.make_vm(VmConfig::default());
//! vm.run_entry().unwrap(); // runs with dynamic class hierarchy mutation
//! ```

pub mod analysis;
pub mod engine;
pub mod olc;
pub mod online;
pub mod pipeline;
pub mod plan;
pub mod synth;

pub use analysis::{build_plan, find_state_fields, AnalysisConfig};
pub use engine::MutationEngine;
pub use olc::{analyze_olc, OlcReport};
pub use online::{OnlineSession, Phase};
pub use pipeline::{prepare, PipelineConfig, Prepared};
pub use plan::{HotState, MutableClass, MutationPlan};
pub use synth::{synthesize_plan, SynthConfig};
