//! The end-to-end offline pipeline (paper Figure 3):
//!
//! 1. identify hot methods (profiling run #1),
//! 2. derive state fields for hot classes (EQ 1 static analysis),
//! 3. find hot states (profiling run #2 with value sampling),
//! 4. run object-lifetime-constant analysis,
//! 5. feed everything into a fresh VM at startup.

use crate::analysis::{build_plan, find_state_fields, AnalysisConfig};
use crate::engine::MutationEngine;
use crate::olc::{analyze_olc, OlcReport};
use crate::plan::MutationPlan;
use dchm_bytecode::Program;
use dchm_profile::{profile_field_values, profile_hot_methods, HotMethodReport};
use dchm_vm::{SharedCodeCache, Vm, VmConfig};
use std::sync::Arc;

/// Pipeline configuration.
#[derive(Clone, Debug, Default)]
pub struct PipelineConfig {
    /// Static-analysis tunables (EQ 1 parameters, state caps).
    pub analysis: AnalysisConfig,
    /// VM configuration used for the two profiling runs.
    pub profile_vm: VmConfig,
}

/// Everything the offline pipeline produced.
#[derive(Debug)]
pub struct Prepared {
    /// The program (unchanged).
    pub program: Program,
    /// The mutation plan.
    pub plan: MutationPlan,
    /// Object-lifetime-constant analysis results.
    pub olc: OlcReport,
    /// Hot-method profile from run #1 (diagnostics).
    pub hot: HotMethodReport,
}

impl Prepared {
    /// Builds a VM with the mutation engine installed.
    pub fn make_vm(&self, config: VmConfig) -> Vm {
        let engine = MutationEngine::new(self.plan.clone(), self.olc.clone());
        engine.attach(self.program.clone(), config)
    }

    /// [`Self::make_vm`] for a fleet tenant: attaches the fleet-wide shared
    /// compile-artifact cache right after engine attach. Attach installs
    /// patch points but compiles nothing, so the cache observes every
    /// compile of the subsequent run — including the engine's batched
    /// special-version installs, which probe it before spinning up compile
    /// workers.
    pub fn make_vm_shared(&self, config: VmConfig, shared: &Arc<SharedCodeCache>) -> Vm {
        let mut vm = self.make_vm(config);
        vm.state.attach_shared_cache(Arc::clone(shared));
        vm
    }

    /// Builds a mutation-off VM over the same program (the baseline the
    /// paper's speedups compare against).
    pub fn make_baseline_vm(&self, config: VmConfig) -> Vm {
        Vm::new(self.program.clone(), config)
    }
}

/// Runs the offline pipeline. `driver` runs the workload on a profiling VM
/// and is invoked twice (hot-method run, value-sampling run).
pub fn prepare(
    program: Program,
    cfg: &PipelineConfig,
    driver: impl Fn(&mut Vm),
) -> Prepared {
    // Step 1: hot methods.
    let hot = profile_hot_methods(program.clone(), cfg.profile_vm.clone(), &driver);
    // Step 2: candidate state fields.
    let candidates = find_state_fields(&program, &hot, &cfg.analysis);
    // Step 3: value sampling on the candidates.
    let values = profile_field_values(
        program.clone(),
        cfg.profile_vm.clone(),
        candidates.iter().map(|c| c.field),
        &driver,
    );
    let plan = build_plan(&program, &hot, &values, &cfg.analysis);
    // Step 4: OLC analysis restricted to the mutable classes.
    let targets = plan.classes.iter().map(|c| c.class).collect();
    let olc = analyze_olc(&program, Some(&targets));
    Prepared {
        program,
        plan,
        olc,
        hot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};

    /// Logic-simulator-flavoured program: a Gate with a `kind` field and an
    /// eval() branching on it, hammered in a loop.
    fn gates() -> (Program, dchm_bytecode::ClassId) {
        let mut pb = ProgramBuilder::new();
        let gate = pb.class("Gate").build();
        let kind = pb.instance_field(gate, "kind", Ty::Int);
        let mut m = pb.ctor(gate, vec![Ty::Int]);
        let this = m.this();
        let k = m.param(0);
        m.put_field(this, kind, k);
        m.ret(None);
        m.build();
        let mut m = pb.method(gate, "eval", MethodSig::new(vec![Ty::Int, Ty::Int], Some(Ty::Int)));
        let this = m.this();
        let a = m.param(0);
        let b = m.param(1);
        let k = m.reg();
        m.get_field(k, this, kind);
        let l_or = m.label();
        let out = m.reg();
        m.br_icmp_imm(CmpOp::Ne, k, 0, l_or);
        m.ibin(dchm_bytecode::IBinOp::And, out, a, b);
        m.ret(Some(out));
        m.bind(l_or);
        m.ibin(dchm_bytecode::IBinOp::Or, out, a, b);
        m.ret(Some(out));
        m.build();

        let mut m = pb.static_method(gate, "main", MethodSig::void());
        let g0 = m.reg();
        let zero = m.imm(0);
        m.new_init(g0, gate, vec![zero]);
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        let lim = m.imm(4000);
        m.br_icmp(CmpOp::Ge, i, lim, done);
        let one = m.imm(1);
        let v = m.reg();
        m.call_virtual(Some(v), g0, "eval", vec![i, one]);
        m.sink_int(v);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        (pb.finish().unwrap(), gate)
    }

    #[test]
    fn pipeline_end_to_end_preserves_behaviour() {
        let (p, gate) = gates();
        let cfg = PipelineConfig::default();
        let prepared = prepare(p, &cfg, |vm| {
            vm.run_entry().unwrap();
        });
        assert!(prepared.plan.class(gate).is_some());

        let fast = VmConfig {
            sample_period: 10_000,
            opt1_samples: 2,
            opt2_samples: 4,
            ..Default::default()
        };

        let mut base = prepared.make_baseline_vm(fast.clone());
        base.run_entry().unwrap();
        let mut mutated = prepared.make_vm(fast);
        mutated.run_entry().unwrap();
        assert_eq!(base.state.output.checksum, mutated.state.output.checksum);
        assert!(mutated.stats().special_tibs > 0);
    }

    #[test]
    fn shared_cache_tenants_stay_bit_identical_and_second_skips_the_compiler() {
        let (p, _) = gates();
        let prepared = prepare(p, &PipelineConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        let fast = VmConfig {
            sample_period: 10_000,
            opt1_samples: 2,
            opt2_samples: 4,
            ..Default::default()
        };
        let mut solo = prepared.make_vm(fast.clone());
        solo.run_entry().unwrap();

        let shared = Arc::new(SharedCodeCache::new(1024));
        let mut t1 = prepared.make_vm_shared(fast.clone(), &shared);
        t1.run_entry().unwrap();
        let mut t2 = prepared.make_vm_shared(fast, &shared);
        t2.run_entry().unwrap();

        // Sharing is invisible to every modeled observable.
        assert_eq!(solo.state.output.checksum, t1.state.output.checksum);
        assert_eq!(solo.cycles(), t1.cycles());
        assert_eq!(t1.cycles(), t2.cycles());
        assert_eq!(t1.stats(), t2.stats());
        // The second identical tenant never runs a compiler pipeline.
        assert!(t1.state.shared_misses > 0);
        assert!(t2.state.shared_hits > 0);
        assert_eq!(t2.state.compile_wall_nanos, 0);
        assert!(shared.stats().hits >= t2.state.shared_hits);
    }

    #[test]
    fn plan_survives_json_roundtrip_through_pipeline() {
        let (p, _) = gates();
        let prepared = prepare(p, &PipelineConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        let json = prepared.plan.to_json().unwrap();
        let back = MutationPlan::from_json(&json).unwrap();
        assert_eq!(prepared.plan, back);
    }
}
