//! Offline static analysis (paper Sec. 3.1).
//!
//! Implements EQ 1:
//!
//! ```text
//! V = Σ Li·Hi  −  R · Σ li·hi
//! ```
//!
//! summed over *branch uses* of a field (loop nesting `Li`, containing
//! method hotness `Hi`) minus `R` times the same product over *assignments*
//! (`li`, `hi`). A field scoring high is read in hot, deeply nested control
//! flow and written rarely/coldly — exactly the profile of a state field.
//!
//! One clarification relative to the paper's formula: loop nesting levels
//! are used 1-based (`L+1`), so a branch use at top level of a very hot
//! method still contributes (the paper's SalaryDB `raise()` has its `grade`
//! branches outside any loop *within the method*).

use crate::plan::{HotState, MutableClass, MutationPlan};
use dchm_bytecode::{
    loop_nesting, ClassId, FieldId, Instr, MethodKind, Op, Program, Reg, Value,
};
use dchm_profile::{HotMethodReport, ValueReport};
use std::collections::HashMap;

/// Analysis tunables.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// `R` of EQ 1: weight of assignment sites against use sites.
    pub r: f64,
    /// Minimum EQ 1 score for a field to become a state field.
    pub min_score: f64,
    /// A method is "hot" if its cycle share reaches this fraction.
    pub min_method_hotness: f64,
    /// Cap on state fields per class (highest scores win).
    pub max_state_fields_per_class: usize,
    /// Cap on hot values considered per field.
    pub max_values_per_field: usize,
    /// Cap on hot states per class (highest frequencies win).
    pub max_hot_states_per_class: usize,
    /// Minimum relative frequency for a value to count as hot.
    pub min_value_frequency: f64,
    /// Level at which special code is generated (the paper: opt2).
    pub mutation_level: u8,
    /// `k` of the Section 5 inline-vs-specialize heuristic.
    pub k: i64,
    /// Plant state guards + deopt side tables in special compiled code.
    pub emit_guards: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            r: 1.0,
            min_score: 0.008,
            min_method_hotness: 0.004,
            max_state_fields_per_class: 3,
            max_values_per_field: 4,
            max_hot_states_per_class: 8,
            min_value_frequency: 0.05,
            mutation_level: 2,
            k: 0,
            emit_guards: true,
        }
    }
}

/// A field's EQ 1 score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FieldScore {
    /// The field.
    pub field: FieldId,
    /// Declaring class.
    pub owner: ClassId,
    /// The EQ 1 value `V`.
    pub score: f64,
}

/// Runs EQ 1 over the whole program; returns fields scoring at least
/// `cfg.min_score`, best first.
pub fn find_state_fields(
    program: &Program,
    hot: &HotMethodReport,
    cfg: &AnalysisConfig,
) -> Vec<FieldScore> {
    let mut uses: HashMap<FieldId, f64> = HashMap::new();
    let mut assigns: HashMap<FieldId, f64> = HashMap::new();

    for (mi, md) in program.methods.iter().enumerate() {
        if md.code.is_empty() {
            continue;
        }
        let h = hot.hotness.get(mi).copied().unwrap_or(0.0);
        let nesting = loop_nesting(&md.code);
        // Taint: which register currently holds which field's value.
        let mut taint: HashMap<Reg, FieldId> = HashMap::new();
        for (at, instr) in md.code.iter().enumerate() {
            let depth = (nesting.nesting[at] + 1) as f64;
            match instr {
                Instr::Op(op) => {
                    // Branch uses: a compare consuming a field-tainted reg.
                    match op {
                        Op::ICmp { a, b, .. } | Op::DCmp { a, b, .. } => {
                            for r in [a, b] {
                                if let Some(&f) = taint.get(r) {
                                    if h >= cfg.min_method_hotness {
                                        *uses.entry(f).or_insert(0.0) += depth * h;
                                    }
                                }
                            }
                        }
                        Op::PutField { field, .. } | Op::PutStatic { field, .. }
                            // Constructor self-initialization is expected and
                            // cheap; the paper's "assignment in a cold
                            // function" penalty targets steady-state writes.
                            if md.kind != MethodKind::Constructor => {
                                *assigns.entry(*field).or_insert(0.0) += depth * h.max(1e-6);
                            }
                        _ => {}
                    }
                    // Taint transfer.
                    match op {
                        Op::GetField { dst, field, .. } | Op::GetStatic { dst, field } => {
                            taint.insert(*dst, *field);
                        }
                        Op::Mov { dst, src } => {
                            match taint.get(src).copied() {
                                Some(f) => {
                                    taint.insert(*dst, f);
                                }
                                None => {
                                    taint.remove(dst);
                                }
                            }
                        }
                        _ => {
                            if let Some(d) = op.def() {
                                taint.remove(&d);
                            }
                        }
                    }
                }
                Instr::BrIf { cond, .. } => {
                    // Direct branch on a (boolean) field value.
                    if let Some(&f) = taint.get(cond) {
                        if h >= cfg.min_method_hotness {
                            *uses.entry(f).or_insert(0.0) += depth * h;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut out: Vec<FieldScore> = uses
        .into_iter()
        .map(|(field, u)| {
            let a = assigns.get(&field).copied().unwrap_or(0.0);
            FieldScore {
                field,
                owner: program.field(field).owner,
                score: u - cfg.r * a,
            }
        })
        .filter(|fs| fs.score >= cfg.min_score)
        .collect();
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.field.cmp(&b.field)));
    out
}

/// True if `method` reads `field` anywhere in its body.
fn method_reads(program: &Program, method: dchm_bytecode::MethodId, field: FieldId) -> bool {
    program.method(method).code.iter().any(|i| {
        matches!(i, Instr::Op(Op::GetField { field: f, .. } | Op::GetStatic { field: f, .. }) if *f == field)
    })
}

/// True if `method` reads instance `field` through its own receiver (`r0`,
/// never redefined) — the only reads state specialization can constant-fold.
fn method_reads_via_this(
    program: &Program,
    method: dchm_bytecode::MethodId,
    field: FieldId,
) -> bool {
    let md = program.method(method);
    if !md.has_receiver() {
        return false;
    }
    let receiver_stable = md.code.iter().all(|i| match i {
        Instr::Op(op) => op.def() != Some(Reg(0)),
        _ => true,
    });
    if !receiver_stable {
        return false;
    }
    md.code.iter().any(|i| {
        matches!(
            i,
            Instr::Op(Op::GetField { obj: Reg(0), field: f, .. }) if *f == field
        )
    })
}

/// Builds the complete mutation plan from the profiling artifacts
/// (the offline half of the paper's Figure 3).
pub fn build_plan(
    program: &Program,
    hot: &HotMethodReport,
    values: &ValueReport,
    cfg: &AnalysisConfig,
) -> MutationPlan {
    let scored = find_state_fields(program, hot, cfg);

    // Attribute each state field to the classes whose *own* methods depend
    // on it: instance fields to subclasses of the owner reading through
    // `this` (those reads specialize), static fields to any class with a
    // reading method. The declaring class itself may contribute nothing
    // (the paper: "the fields can be declared by a class itself or a
    // class's parent classes").
    let mut by_class: HashMap<ClassId, Vec<FieldScore>> = HashMap::new();
    for fs in scored {
        let is_static = program.field(fs.field).is_static;
        for (ci, cd) in program.classes.iter().enumerate() {
            let class = ClassId::from_index(ci);
            if cd.is_interface {
                continue;
            }
            if !is_static && !program.is_subclass(class, fs.owner) {
                continue;
            }
            let has_reader = cd.methods.iter().any(|&m| {
                let md = program.method(m);
                if md.kind == MethodKind::Constructor || md.kind == MethodKind::Abstract {
                    return false;
                }
                if is_static {
                    method_reads(program, m, fs.field)
                } else {
                    method_reads_via_this(program, m, fs.field)
                }
            });
            if has_reader {
                by_class.entry(class).or_default().push(fs);
            }
        }
    }

    let mut classes = Vec::new();
    for (class, mut fields) in by_class {
        fields.truncate(cfg.max_state_fields_per_class);

        // Hot values per field, from the sampling histograms:
        // (field, is_static, ranked (value, frequency) pairs).
        type FieldHotValues = (FieldId, bool, Vec<(Value, f64)>);
        let mut field_values: Vec<FieldHotValues> = Vec::new();
        for fs in &fields {
            let hist = values.histogram(fs.field);
            if hist.total == 0 {
                continue; // never stored; cannot establish a state
            }
            let vals: Vec<(Value, f64)> = hist
                .ranked()
                .into_iter()
                .filter(|(v, freq)| *freq >= cfg.min_value_frequency && !v.is_reference())
                .take(cfg.max_values_per_field)
                .collect();
            if vals.is_empty() {
                continue;
            }
            let is_static = program.field(fs.field).is_static;
            field_values.push((fs.field, is_static, vals));
        }
        if field_values.is_empty() {
            continue;
        }

        // Hot states: cartesian product over the fields' hot values.
        let mut states: Vec<HotState> = vec![HotState {
            instance_values: vec![],
            static_values: vec![],
            frequency: 1.0,
        }];
        for (field, is_static, vals) in &field_values {
            let mut next = Vec::new();
            for st in &states {
                for (v, freq) in vals {
                    let mut s = st.clone();
                    if *is_static {
                        s.static_values.push((*field, *v));
                    } else {
                        s.instance_values.push((*field, *v));
                    }
                    s.frequency *= freq;
                    next.push(s);
                }
            }
            states = next;
        }
        states.sort_by(|a, b| b.frequency.partial_cmp(&a.frequency).unwrap());
        states.truncate(cfg.max_hot_states_per_class);

        // Mutable methods: declared by this class, non-constructor,
        // reading a state field (through `this` for instance fields).
        let mutable_methods: Vec<_> = program
            .class(class)
            .methods
            .iter()
            .copied()
            .filter(|&m| {
                let md = program.method(m);
                md.kind != MethodKind::Constructor
                    && md.kind != MethodKind::Abstract
                    && field_values.iter().any(|(f, is_static, _)| {
                        if *is_static {
                            method_reads(program, m, *f)
                        } else {
                            method_reads_via_this(program, m, *f)
                        }
                    })
            })
            .collect();
        if mutable_methods.is_empty() || states.is_empty() {
            continue;
        }

        let instance_state_fields = field_values
            .iter()
            .filter(|(_, s, _)| !*s)
            .map(|(f, _, _)| *f)
            .collect();
        let static_state_fields = field_values
            .iter()
            .filter(|(_, s, _)| *s)
            .map(|(f, _, _)| *f)
            .collect();
        classes.push(MutableClass {
            class,
            instance_state_fields,
            static_state_fields,
            hot_states: states,
            mutable_methods,
            field_scores: fields.iter().map(|fs| (fs.field, fs.score)).collect(),
        });
    }
    classes.sort_by_key(|c| c.class);
    MutationPlan {
        classes,
        mutation_level: cfg.mutation_level,
        k: cfg.k,
        emit_guards: cfg.emit_guards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};
    use dchm_profile::{profile_field_values, profile_hot_methods};
    use dchm_vm::VmConfig;

    /// A SalaryDB-shaped program: `raise()` branches on `grade`, a driver
    /// loop hammers it; `promote()` (cold) writes grade.
    fn salary_like() -> (dchm_bytecode::Program, FieldId, ClassId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("SalaryEmployee").build();
        let grade = pb.private_field(c, "grade", Ty::Int);
        let salary = pb.private_field(c, "salary", Ty::Double);
        let mut m = pb.ctor(c, vec![Ty::Int]);
        let this = m.this();
        let g = m.param(0);
        m.put_field(this, grade, g);
        m.ret(None);
        m.build();

        let mut m = pb.method(c, "raise", MethodSig::void());
        let this = m.this();
        let g = m.reg();
        m.get_field(g, this, grade);
        let s = m.reg();
        m.get_field(s, this, salary);
        let l1 = m.label();
        let done = m.label();
        m.br_icmp_imm(CmpOp::Ne, g, 0, l1);
        let one = m.imm_d(1.0);
        m.dadd(s, s, one);
        m.jmp(done);
        m.bind(l1);
        let k = m.imm_d(1.01);
        m.dmul(s, s, k);
        m.bind(done);
        m.put_field(this, salary, s);
        m.ret(None);
        m.build();

        let mut m = pb.method(c, "promote", MethodSig::new(vec![Ty::Int], None));
        let this = m.this();
        let g = m.param(0);
        m.put_field(this, grade, g);
        m.ret(None);
        m.build();

        let mut m = pb.static_method(c, "main", MethodSig::void());
        let o = m.reg();
        let zero = m.imm(0);
        m.new_init(o, c, vec![zero]);
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        let lim = m.imm(3000);
        m.br_icmp(CmpOp::Ge, i, lim, done);
        m.call_virtual(None, o, "raise", vec![]);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        // One cold promote.
        let one = m.imm(1);
        m.call_virtual(None, o, "promote", vec![one]);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        (pb.finish().unwrap(), grade, c)
    }

    #[test]
    fn eq1_finds_grade_as_top_state_field() {
        let (p, grade, _) = salary_like();
        let hot = profile_hot_methods(p.clone(), VmConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        let cfg = AnalysisConfig::default();
        let fields = find_state_fields(&p, &hot, &cfg);
        assert!(!fields.is_empty());
        assert_eq!(fields[0].field, grade, "{fields:?}");
        assert!(fields[0].score > 0.0);
    }

    #[test]
    fn eq1_penalizes_hot_assignment() {
        // Same program, but driver calls promote() in the hot loop: grade is
        // written as often as read, so V drops (relative to the read-mostly
        // variant).
        let (p, grade, c) = salary_like();
        let hot = profile_hot_methods(p.clone(), VmConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        let cfg = AnalysisConfig::default();
        let read_mostly = find_state_fields(&p, &hot, &cfg)
            .iter()
            .find(|f| f.field == grade)
            .unwrap()
            .score;

        // Synthetic "hot promote" report: pretend promote is as hot as raise.
        let raise = p.method_by_name(c, "raise").unwrap();
        let promote = p.method_by_name(c, "promote").unwrap();
        let mut hot2 = hot.clone();
        hot2.hotness[promote.index()] = hot2.hotness[raise.index()];
        let hot_write = find_state_fields(&p, &hot2, &cfg)
            .iter()
            .find(|f| f.field == grade)
            .map(|f| f.score)
            .unwrap_or(0.0);
        assert!(
            hot_write < read_mostly,
            "hot writes must reduce V: {hot_write} vs {read_mostly}"
        );
    }

    #[test]
    fn r_parameter_scales_penalty() {
        let (p, grade, _) = salary_like();
        let hot = profile_hot_methods(p.clone(), VmConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        let mut cfg = AnalysisConfig {
            r: 0.0,
            ..Default::default()
        };
        let v0 = find_state_fields(&p, &hot, &cfg)
            .iter()
            .find(|f| f.field == grade)
            .unwrap()
            .score;
        cfg.r = 100.0;
        let v100 = find_state_fields(&p, &hot, &cfg)
            .iter()
            .find(|f| f.field == grade)
            .map(|f| f.score)
            .unwrap_or(f64::NEG_INFINITY);
        assert!(v100 <= v0);
    }

    #[test]
    fn plan_has_states_from_value_profile() {
        let (p, grade, c) = salary_like();
        let hot = profile_hot_methods(p.clone(), VmConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        let values = profile_field_values(p.clone(), VmConfig::default(), [grade], |vm| {
            vm.run_entry().unwrap();
        });
        let plan = build_plan(&p, &hot, &values, &AnalysisConfig::default());
        let mc = plan.class(c).expect("SalaryEmployee is mutable");
        assert_eq!(mc.instance_state_fields, vec![grade]);
        // grade was stored as 0 (ctor) and 1 (promote): two hot states.
        assert_eq!(mc.hot_states.len(), 2);
        let raise = p.method_by_name(c, "raise").unwrap();
        assert!(mc.mutable_methods.contains(&raise));
        // promote() writes but never reads grade: not a mutable method.
        let promote = p.method_by_name(c, "promote").unwrap();
        assert!(!mc.mutable_methods.contains(&promote));
        assert_eq!(plan.mutation_level, 2);
    }

    #[test]
    fn deeper_loop_nesting_scores_higher() {
        // Two classes, identical hotness; one reads its field in a nested
        // loop, the other at top level. EQ 1 must rank the nested use higher.
        let mut pb = ProgramBuilder::new();
        let shallow = pb.class("Shallow").build();
        let f_sh = pb.instance_field(shallow, "st", Ty::Int);
        pb.trivial_ctor(shallow);
        let mut m = pb.method(shallow, "work", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        let this = m.this();
        let v = m.reg();
        m.get_field(v, this, f_sh);
        let out = m.reg();
        let alt = m.label();
        m.br_icmp_imm(CmpOp::Ne, v, 0, alt);
        m.const_i(out, 1);
        m.ret(Some(out));
        m.bind(alt);
        m.const_i(out, 2);
        m.ret(Some(out));
        m.build();

        let deep = pb.class("Deep").build();
        let f_dp = pb.instance_field(deep, "st", Ty::Int);
        pb.trivial_ctor(deep);
        let mut m = pb.method(deep, "work", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        let this = m.this();
        let n = m.param(0);
        let acc = m.reg();
        m.const_i(acc, 0);
        let i = m.reg();
        m.const_i(i, 0);
        let oh = m.label();
        let od = m.label();
        m.bind(oh);
        m.br_icmp(CmpOp::Ge, i, n, od);
        let j = m.reg();
        m.const_i(j, 0);
        let ih = m.label();
        let id = m.label();
        m.bind(ih);
        m.br_icmp(CmpOp::Ge, j, n, id);
        let v = m.reg();
        m.get_field(v, this, f_dp);
        let alt = m.label();
        let join = m.label();
        m.br_icmp_imm(CmpOp::Ne, v, 0, alt);
        m.iadd_imm(acc, acc, 1);
        m.jmp(join);
        m.bind(alt);
        m.iadd_imm(acc, acc, 2);
        m.bind(join);
        m.iadd_imm(j, j, 1);
        m.jmp(ih);
        m.bind(id);
        m.iadd_imm(i, i, 1);
        m.jmp(oh);
        m.bind(od);
        m.ret(Some(acc));
        m.build();

        // Equal synthetic hotness for both work() methods.
        let p = pb.finish().unwrap();
        let mut hot = dchm_profile::HotMethodReport {
            hotness: vec![0.0; p.methods.len()],
            ..Default::default()
        };
        for (mi, md) in p.methods.iter().enumerate() {
            if md.name == "work" {
                hot.hotness[mi] = 0.5;
            }
        }
        let cfg = AnalysisConfig {
            min_score: -1.0,
            ..Default::default()
        };
        let scores = find_state_fields(&p, &hot, &cfg);
        let score_of = |f: FieldId| scores.iter().find(|s| s.field == f).map(|s| s.score).unwrap();
        assert!(
            score_of(f_dp) > score_of(f_sh),
            "nested-loop use must outrank top-level use: {} vs {}",
            score_of(f_dp),
            score_of(f_sh)
        );
    }

    #[test]
    fn plan_empty_without_observed_values() {
        let (p, _, _) = salary_like();
        let hot = profile_hot_methods(p.clone(), VmConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        let values = ValueReport::default();
        let plan = build_plan(&p, &hot, &values, &AnalysisConfig::default());
        assert!(plan.classes.is_empty());
    }
}
