//! The mutation plan — the artifact the offline pipeline produces and the
//! JVM consumes at startup (paper Fig. 3: "Hot state information for hot
//! (mutable) classes").

use dchm_bytecode::{ClassId, FieldId, MethodId, Value};
use serde::{Deserialize, Serialize};

/// One hot (mutation) state of a mutable class: known constant values for
/// its instance and static state fields, e.g. `grade == 2` for
/// `SalaryEmployeeGrade2` in the paper's Figure 2.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HotState {
    /// Instance state-field values in this state.
    pub instance_values: Vec<(FieldId, Value)>,
    /// Static state-field values in this state.
    pub static_values: Vec<(FieldId, Value)>,
    /// Observed relative frequency of this state during profiling.
    pub frequency: f64,
}

impl HotState {
    /// True if this state constrains no instance fields.
    pub fn instance_part_is_empty(&self) -> bool {
        self.instance_values.is_empty()
    }
}

/// A mutable class: a class whose behaviour depends on a small set of state
/// fields with a few hot value combinations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MutableClass {
    /// The class.
    pub class: ClassId,
    /// Instance state fields (declared by this class or an ancestor).
    pub instance_state_fields: Vec<FieldId>,
    /// Static state fields.
    pub static_state_fields: Vec<FieldId>,
    /// Hot states (full combinations over instance + static fields).
    pub hot_states: Vec<HotState>,
    /// Mutable methods: methods *declared by this class* that read a state
    /// field (the paper's Fig. 6 rule — inherited/subclass methods are not
    /// mutation candidates for this class).
    pub mutable_methods: Vec<MethodId>,
    /// EQ 1 scores of the state fields (diagnostics).
    pub field_scores: Vec<(FieldId, f64)>,
}

impl MutableClass {
    /// True if any hot state constrains instance fields (the class then
    /// needs special TIBs; otherwise the class TIB itself is specialized —
    /// Sec. 3.2.2).
    pub fn has_instance_state(&self) -> bool {
        !self.instance_state_fields.is_empty()
    }
}

/// The complete plan.
#[derive(Clone, Debug, PartialEq)]
pub struct MutationPlan {
    /// Mutable classes.
    pub classes: Vec<MutableClass>,
    /// Optimization level at which special code is generated (the paper
    /// mutates at opt2).
    pub mutation_level: u8,
    /// `k` of the Section 5 inline-vs-specialize heuristic.
    pub k: i64,
    /// Plant state guards and deopt side tables in special compiled code so
    /// live specialized frames can deoptimize when an object leaves its hot
    /// state mid-method. On by default; plans serialized before this field
    /// existed deserialize to `true`.
    pub emit_guards: bool,
}

// Hand-written (de)serialization: `emit_guards` must default to `true` for
// plan files written before the field existed, which the derive cannot
// express.
impl Serialize for MutationPlan {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("classes".to_string(), self.classes.to_json_value()),
            (
                "mutation_level".to_string(),
                self.mutation_level.to_json_value(),
            ),
            ("k".to_string(), self.k.to_json_value()),
            ("emit_guards".to_string(), self.emit_guards.to_json_value()),
        ])
    }
}

impl Deserialize for MutationPlan {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(MutationPlan {
            classes: Deserialize::from_json_value(serde::helpers::field(v, "classes")?)?,
            mutation_level: Deserialize::from_json_value(serde::helpers::field(
                v,
                "mutation_level",
            )?)?,
            k: Deserialize::from_json_value(serde::helpers::field(v, "k")?)?,
            emit_guards: match serde::helpers::field(v, "emit_guards") {
                Ok(fv) => Deserialize::from_json_value(fv)?,
                Err(_) => true,
            },
        })
    }
}

impl Default for MutationPlan {
    fn default() -> Self {
        MutationPlan {
            classes: Vec::new(),
            mutation_level: 0,
            k: 0,
            emit_guards: true,
        }
    }
}

impl MutationPlan {
    /// Serializes the plan to JSON (the "fed into a JVM at startup" format).
    ///
    /// # Errors
    /// Propagates serialization failures (practically impossible).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a plan from JSON.
    ///
    /// # Errors
    /// Returns the parse error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The mutable-class entry for `class`, if any.
    pub fn class(&self, class: ClassId) -> Option<&MutableClass> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Total number of hot states across all classes.
    pub fn total_states(&self) -> usize {
        self.classes.iter().map(|c| c.hot_states.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> MutationPlan {
        MutationPlan {
            classes: vec![MutableClass {
                class: ClassId(3),
                instance_state_fields: vec![FieldId(1)],
                static_state_fields: vec![],
                hot_states: (0..4)
                    .map(|g| HotState {
                        instance_values: vec![(FieldId(1), Value::Int(g))],
                        static_values: vec![],
                        frequency: 0.25,
                    })
                    .collect(),
                mutable_methods: vec![MethodId(7)],
                field_scores: vec![(FieldId(1), 12.5)],
            }],
            mutation_level: 2,
            k: 0,
            emit_guards: true,
        }
    }

    #[test]
    fn json_roundtrip() {
        let plan = sample_plan();
        let json = plan.to_json().unwrap();
        let back = MutationPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        assert!(json.contains("mutation_level"));
    }

    #[test]
    fn old_plans_without_guard_flag_default_to_guarded() {
        // A plan serialized before `emit_guards` existed.
        let json = r#"{ "classes": [], "mutation_level": 2, "k": 0 }"#;
        let back = MutationPlan::from_json(json).unwrap();
        assert!(back.emit_guards);
        assert_eq!(back.mutation_level, 2);
    }

    #[test]
    fn queries() {
        let plan = sample_plan();
        assert!(plan.class(ClassId(3)).is_some());
        assert!(plan.class(ClassId(0)).is_none());
        assert_eq!(plan.total_states(), 4);
        assert!(plan.classes[0].has_instance_state());
        assert!(!plan.classes[0].hot_states[0].instance_part_is_empty());
    }
}
