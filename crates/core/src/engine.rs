//! The online mutation engine: the paper's *distributed dynamic class
//! mutation algorithm* (Figures 4 and 5).
//!
//! Responsibilities, by trigger:
//!
//! * **Constructor exit / instance state-field assignment** (Fig. 4, top &
//!   middle): read the object's instance state fields; if they match a hot
//!   state's instance part, flip the object's TIB pointer to the matching
//!   special TIB, otherwise back to the class TIB.
//! * **Static state-field assignment** (Fig. 4, bottom): re-evaluate which
//!   hot states' static parts currently hold and repoint mutable-method
//!   entries in special TIBs (or the class TIB for classes with no instance
//!   state, or the JTOC for static/private methods) between special and
//!   general compiled code.
//! * **Recompilation of a mutable method at the mutation level** (Fig. 5):
//!   generate one specialized version per hot state and install per the
//!   current static state. General code propagates to subclasses (done by
//!   the VM); special code never does (Fig. 6).

use crate::olc::OlcReport;
use crate::plan::{HotState, MutationPlan};
use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{ClassId, FieldId, MethodId, MethodKind, Value};
use dchm_ir::passes::Bindings;
use dchm_vm::trace::{TraceEvent, NO_ID};
use dchm_vm::{CodeSlot, CompiledId, MutationHandler, PatchSpec, TibId, Vm, VmConfig, VmState};
use std::collections::HashMap;

/// Per-mutable-method runtime bookkeeping.
#[derive(Debug)]
struct MethodRt {
    method: MethodId,
    /// vtable slot for virtual methods; `None` for statically-bound ones
    /// (static methods and private instance methods).
    vslot: Option<u32>,
    is_static: bool,
    is_private_instance: bool,
    /// Special compiled code per hot state (generated at mutation level).
    special: Vec<Option<CompiledId>>,
}

/// Per-mutable-class runtime bookkeeping.
#[derive(Debug)]
struct ClassRt {
    class: ClassId,
    inst_fields: Vec<FieldId>,
    states: Vec<HotState>,
    /// Distinct instance parts among the hot states.
    inst_parts: Vec<Vec<(FieldId, Value)>>,
    /// Hot state -> instance part index.
    state_part: Vec<usize>,
    /// One special TIB per instance part (empty for static-only classes).
    special_tibs: Vec<TibId>,
    methods: Vec<MethodRt>,
    /// Static-part satisfaction per hot state as of the last refresh —
    /// only used to emit class-wide `StateTransition` trace events on
    /// toggles (tracing is host-side; this never affects installs).
    prev_statics_ok: Vec<bool>,
}

/// The mutation engine. Create with [`MutationEngine::new`], then either
/// attach it to a VM via [`MutationEngine::attach`] or install it manually
/// with [`MutationEngine::install`] + [`Vm::set_handler`].
#[derive(Debug)]
pub struct MutationEngine {
    plan: MutationPlan,
    olc: OlcReport,
    rt: Vec<ClassRt>,
    class_index: HashMap<ClassId, usize>,
    /// static state field -> dependent class indices.
    static_dep: HashMap<FieldId, Vec<usize>>,
    /// mutable method -> (class rt index, method rt index).
    method_index: HashMap<MethodId, (usize, usize)>,
    installed: bool,
}

impl MutationEngine {
    /// Creates an engine from a plan and OLC analysis results.
    pub fn new(plan: MutationPlan, olc: OlcReport) -> Self {
        MutationEngine {
            plan,
            olc,
            rt: Vec::new(),
            class_index: HashMap::new(),
            static_dep: HashMap::new(),
            method_index: HashMap::new(),
            installed: false,
        }
    }

    /// Convenience: build a VM with this engine installed and attached.
    pub fn attach(mut self, program: dchm_bytecode::Program, config: VmConfig) -> Vm {
        let mut vm = Vm::new(program, config);
        self.install(&mut vm.state);
        vm.set_handler(Box::new(self));
        vm
    }

    /// Installs the plan into the VM state: patch spec, compiler hints,
    /// special TIBs. Must run before execution starts.
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn install(&mut self, vm: &mut VmState) {
        assert!(!self.installed, "engine installed twice");
        self.installed = true;

        let mut spec = PatchSpec::default();
        for (ci, mc) in self.plan.classes.iter().enumerate() {
            spec.instance_fields.extend(mc.instance_state_fields.iter().copied());
            spec.static_fields.extend(mc.static_state_fields.iter().copied());
            if mc.has_instance_state() {
                spec.ctor_classes.insert(mc.class);
            }
            vm.mark_mutable_class(mc.class);
            // Section 5 `M`: per mutable method, the state fields it reads.
            for &mm in &mc.mutable_methods {
                let count = spec_fields_read(
                    &vm.program,
                    mm,
                    &mc.instance_state_fields,
                    &mc.static_state_fields,
                );
                if count > 0 {
                    vm.hints.spec_field_count.insert(mm, count);
                }
            }
            for &f in &mc.static_state_fields {
                self.static_dep.entry(f).or_default().push(ci);
            }
            self.class_index.insert(mc.class, ci);

            // Distinct instance parts -> special TIBs.
            let mut inst_parts: Vec<Vec<(FieldId, Value)>> = Vec::new();
            let mut state_part = Vec::with_capacity(mc.hot_states.len());
            for st in &mc.hot_states {
                let pos = inst_parts.iter().position(|p| parts_eq(p, &st.instance_values));
                let idx = match pos {
                    Some(i) => i,
                    None => {
                        inst_parts.push(st.instance_values.clone());
                        inst_parts.len() - 1
                    }
                };
                state_part.push(idx);
            }
            let special_tibs: Vec<TibId> = if mc.has_instance_state() {
                (0..inst_parts.len())
                    .map(|i| vm.create_special_tib(mc.class, i))
                    .collect()
            } else {
                Vec::new()
            };

            let methods: Vec<MethodRt> = mc
                .mutable_methods
                .iter()
                .map(|&m| {
                    let md = vm.program.method(m);
                    let vslot = if md.is_virtual() {
                        vm.program.class(mc.class).vtable_slot(md.selector)
                    } else {
                        None
                    };
                    let rt = MethodRt {
                        method: m,
                        vslot,
                        is_static: md.kind == MethodKind::Static,
                        is_private_instance: md.kind == MethodKind::Instance && vslot.is_none(),
                        special: vec![None; mc.hot_states.len()],
                    };
                    self.method_index.insert(m, (ci, self.rt.len()));
                    rt
                })
                .collect();
            // Fix method_index second components (they must index into
            // `methods`, not `rt`).
            for (mi, mrt) in methods.iter().enumerate() {
                self.method_index.insert(mrt.method, (ci, mi));
            }

            self.rt.push(ClassRt {
                class: mc.class,
                inst_fields: mc.instance_state_fields.clone(),
                states: mc.hot_states.clone(),
                inst_parts,
                state_part,
                special_tibs,
                methods,
                prev_statics_ok: Vec::new(),
            });
            // Seed from the statics as they stand at install so trace
            // events report genuine toggles, not the initial condition.
            let ok = self.statics_ok(vm, ci);
            self.rt[ci].prev_statics_ok = ok;
        }
        vm.patch_spec = spec;
        vm.hints.k = self.plan.k;
        vm.hints.emit_guards = self.plan.emit_guards;
        for (f, info) in &self.olc.infos {
            vm.hints.olc.insert(*f, info.clone());
        }
        // Baseline census at plan install: attribution tooling diffs later
        // snapshots against this one to see what mutation changed.
        vm.trace_census();
    }

    /// The plan this engine runs.
    pub fn plan(&self) -> &MutationPlan {
        &self.plan
    }

    /// Installs this engine into a VM that is *already running* — the
    /// paper's future-work "complete online Java solution" (Sec. 9):
    ///
    /// 1. installs the plan (patch spec, hints, special TIBs);
    /// 2. re-instruments every already-compiled method that needs patch
    ///    points or specialization, by recompiling it at its current level
    ///    (frames executing old code finish on it — no on-stack
    ///    replacement, exactly like recompilation in the paper);
    /// 3. adopts pre-existing objects: every live instance of a mutable
    ///    class whose fields match a hot state gets its TIB flipped now;
    /// 4. becomes the VM's mutation handler.
    ///
    /// # Panics
    /// Panics if the VM is mid-call (frames on the stack) or the engine was
    /// already installed.
    pub fn install_online(mut self, vm: &mut Vm) {
        assert!(
            vm.state.frames.is_empty(),
            "install_online between calls only (no on-stack replacement)"
        );
        self.install(&mut vm.state);

        // Re-instrument affected compiled methods.
        let program = vm.state.program.clone();
        let spec = vm.state.patch_spec.clone();
        let mutable: std::collections::HashSet<MethodId> =
            self.method_index.keys().copied().collect();
        let mut to_recompile: Vec<(MethodId, u8)> = Vec::new();
        for (mi, md) in program.methods.iter().enumerate() {
            let mid = MethodId::from_index(mi);
            let Some(level) = vm.state.level_of(mid) else {
                continue; // not compiled yet; lazy compilation picks up the spec
            };
            let needs = mutable.contains(&mid)
                || (md.kind == MethodKind::Constructor && spec.ctor_classes.contains(&md.owner))
                || md.code.iter().any(|i| {
                    matches!(
                        i,
                        dchm_bytecode::Instr::Op(dchm_bytecode::Op::PutField { field, .. })
                            if spec.instance_fields.contains(field)
                    ) || matches!(
                        i,
                        dchm_bytecode::Instr::Op(dchm_bytecode::Op::PutStatic { field, .. })
                            if spec.static_fields.contains(field)
                    )
                });
            if needs {
                to_recompile.push((mid, level));
            }
        }
        // One batch: the compiler pipelines run on worker threads while
        // billing/installation stay serial in method order, so the result
        // is bit-identical to recompiling one method at a time. In a fleet
        // the batch probes the shared artifact cache first, so tenants past
        // the first skip these pipelines entirely (same bit-identity: the
        // shared artifacts are what the pipelines would produce).
        vm.state.recompile_batch(&to_recompile);
        // Deliver the recompilation events to ourselves (we are not the
        // handler yet), generating specials for hot methods.
        for (mid, level) in vm.state.take_recompile_events() {
            self.on_recompiled(&mut vm.state, mid, level);
        }

        // Adopt objects allocated before the plan existed.
        self.adopt_objects(&mut vm.state);
        // Post-adoption census: captures how many pre-existing objects the
        // online install moved into special states.
        vm.state.trace_census();
        vm.set_handler(Box::new(self));
    }

    /// Flips the TIB of every live instance of a mutable class according to
    /// its *current* field values.
    pub fn adopt_objects(&self, vm: &mut VmState) {
        let candidates: Vec<ObjRef> = vm
            .heap
            .iter_live_objects()
            .filter(|(_, class)| self.class_index.contains_key(class))
            .map(|(obj, _)| obj)
            .collect();
        for obj in candidates {
            self.update_object_tib(vm, obj);
        }
    }

    // -------------------------------------------------------------
    // Internals
    // -------------------------------------------------------------

    /// Which hot states' static parts currently hold.
    fn statics_ok(&self, vm: &VmState, ci: usize) -> Vec<bool> {
        self.rt[ci]
            .states
            .iter()
            .map(|st| {
                st.static_values
                    .iter()
                    .all(|&(f, v)| vm.get_static(f).key_eq(v))
            })
            .collect()
    }

    /// Fig. 4 (top/middle): repoint `obj`'s TIB per its instance state.
    fn update_object_tib(&self, vm: &mut VmState, obj: ObjRef) {
        let class = vm.heap.object(obj).class;
        let Some(&ci) = self.class_index.get(&class) else {
            return; // subclass instances are never mutated (Fig. 6)
        };
        let rt = &self.rt[ci];
        if rt.special_tibs.is_empty() {
            return;
        }
        let matched = rt.inst_parts.iter().position(|part| {
            part.iter()
                .all(|&(f, v)| vm.get_field(obj, f).key_eq(v))
        });
        let target = match matched {
            Some(p) => {
                // Flip-in re-sync: the governor may have pinned this part's
                // slots to general code (throttle/blacklist) or the pin's
                // backoff may have expired — make the TIB's slot view agree
                // with the current verdicts before any object dispatches
                // through it.
                self.resync_part_slots(vm, ci, p);
                rt.special_tibs[p]
            }
            None => vm.class_tib(class),
        };
        if vm.heap.object(obj).tib != target {
            vm.set_object_tib(obj, target);
        }
    }

    /// Recomputes the mutable-method slots of the special TIB for instance
    /// part `p` from the current static state and governor verdicts —
    /// refresh_class's per-part arm, filtered by
    /// [`VmState::special_usable`]. Writes only slots that actually change,
    /// so a flip-in with nothing to restore stays free of cache
    /// invalidations.
    fn resync_part_slots(&self, vm: &mut VmState, ci: usize, p: usize) {
        let statics_ok = self.statics_ok(vm, ci);
        let rt = &self.rt[ci];
        let class_tib = vm.class_tib(rt.class);
        let tib = rt.special_tibs[p];
        for m in &rt.methods {
            let Some(vslot) = m.vslot else { continue };
            let chosen = (0..rt.states.len())
                .find(|&s| {
                    rt.state_part[s] == p
                        && statics_ok[s]
                        && m.special[s].is_some_and(|cid| vm.special_usable(cid))
                })
                .and_then(|s| m.special[s]);
            let slot = match chosen {
                Some(cid) => CodeSlot::Code(cid),
                None => vm.tib_slot(class_tib, vslot),
            };
            if vm.tib_slot(tib, vslot) != slot {
                vm.set_tib_slot(tib, vslot, slot);
            }
        }
    }

    /// Reinstalls mutable-method code pointers for one class according to
    /// the current static state (Fig. 4 bottom / Fig. 5 install step).
    fn refresh_class(&mut self, vm: &mut VmState, ci: usize) {
        let statics_ok = self.statics_ok(vm, ci);
        if vm.tracer.on() {
            // Class-wide transitions: a hot state's *static* part became
            // (un)satisfied. `obj` is NO_ID — the flip applies to every
            // instance at once via code-pointer patching.
            let class = self.rt[ci].class.0;
            for (s, (&now, &was)) in
                statics_ok.iter().zip(&self.rt[ci].prev_statics_ok).enumerate()
            {
                if now != was {
                    vm.tracer.emit(
                        vm.clock,
                        TraceEvent::StateTransition {
                            obj: NO_ID,
                            class,
                            entered: now,
                            state: s as u32,
                        },
                    );
                }
            }
        }
        self.rt[ci].prev_statics_ok.clone_from(&statics_ok);
        let rt = &self.rt[ci];
        let class_tib = vm.class_tib(rt.class);

        for m in &rt.methods {
            // Pick, per instance part, the special code to use (a state
            // whose static part holds and whose special code exists).
            if m.is_static || m.is_private_instance {
                // Statically-bound: JTOC / class-TIB-for-private patching.
                // Only sound when the code does not depend on instance
                // state (Sec. 3.2.3): for instance-state classes, private
                // methods are not mutated.
                let special = if rt.inst_fields.is_empty() || m.is_static {
                    rt.states
                        .iter()
                        .enumerate()
                        .find(|&(s, _)| {
                            statics_ok[s]
                                && m.special[s].is_some_and(|cid| vm.special_usable(cid))
                        })
                        .and_then(|(s, _)| m.special[s])
                } else {
                    None
                };
                vm.set_static_override(m.method, special);
                continue;
            }
            let Some(vslot) = m.vslot else { continue };
            let general = vm.tib_slot(class_tib, vslot);
            if rt.special_tibs.is_empty() {
                // Static-only class: the class TIB itself is specialized.
                let chosen = rt
                    .states
                    .iter()
                    .enumerate()
                    .find(|&(s, _)| {
                        statics_ok[s] && m.special[s].is_some_and(|cid| vm.special_usable(cid))
                    })
                    .and_then(|(s, _)| m.special[s]);
                let slot = match chosen {
                    Some(cid) => CodeSlot::Code(cid),
                    None => match vm.general_code[m.method.index()] {
                        Some(cid) => CodeSlot::Code(cid),
                        None => general,
                    },
                };
                vm.set_tib_slot(class_tib, vslot, slot);
            } else {
                for (p, &tib) in rt.special_tibs.iter().enumerate() {
                    let chosen = (0..rt.states.len())
                        .find(|&s| {
                            rt.state_part[s] == p
                                && statics_ok[s]
                                && m.special[s].is_some_and(|cid| vm.special_usable(cid))
                        })
                        .and_then(|s| m.special[s]);
                    let slot = match chosen {
                        Some(cid) => CodeSlot::Code(cid),
                        None => general,
                    };
                    vm.set_tib_slot(tib, vslot, slot);
                }
            }
        }
    }

    /// Keeps special TIBs mirroring the class TIB for all slots the engine
    /// does not manage (inherited and non-mutable methods).
    fn sync_unmanaged_slots(&self, vm: &mut VmState, ci: usize) {
        let rt = &self.rt[ci];
        let managed: Vec<u32> = rt.methods.iter().filter_map(|m| m.vslot).collect();
        for &tib in &rt.special_tibs {
            vm.sync_special_from_class(rt.class, tib, &managed);
        }
    }

    /// Fig. 5: generate special versions of a mutable method.
    fn generate_specials(&mut self, vm: &mut VmState, ci: usize, mi: usize, level: u8) {
        let (method, is_static, states) = {
            let rt = &self.rt[ci];
            (
                rt.methods[mi].method,
                rt.methods[mi].is_static,
                rt.states.clone(),
            )
        };
        // Batch the per-state fan-out: all specializations of this method
        // compile in one parallel session (mirroring the paper's "generated
        // at the same time"), with billing kept serial in state order.
        let mut reqs = Vec::new();
        let mut targets = Vec::new();
        for (s, st) in states.iter().enumerate() {
            let mut b = Bindings::default();
            if !is_static {
                b.instance = st.instance_values.iter().copied().collect();
            }
            b.statics = st.static_values.iter().copied().collect();
            if b.is_empty() {
                continue;
            }
            // Governor gate: a throttled or blacklisted (method, state)
            // pair is not respecialized — regenerating the code that keeps
            // deoptimizing is exactly the storm being damped.
            if !vm.special_request_allowed(method, &b) {
                continue;
            }
            reqs.push(dchm_vm::CompileRequest {
                method,
                level,
                bindings: Some(b),
            });
            targets.push(s);
        }
        let cids = vm.compile_batch(reqs);
        for (s, cid) in targets.into_iter().zip(cids) {
            // A failed (fault-injected or quarantined) special compile
            // installs nothing; any earlier special version stays usable.
            if cid.is_some() {
                self.rt[ci].methods[mi].special[s] = cid;
            }
        }
    }
}

/// Counts the state fields `method` reads (instance fields through the
/// receiver, static fields anywhere) — `M` of the Section 5 heuristic.
fn spec_fields_read(
    program: &dchm_bytecode::Program,
    method: MethodId,
    inst: &[dchm_bytecode::FieldId],
    statics: &[dchm_bytecode::FieldId],
) -> usize {
    use dchm_bytecode::{Instr, Op, Reg};
    let md = program.method(method);
    let mut seen: std::collections::HashSet<dchm_bytecode::FieldId> =
        std::collections::HashSet::new();
    for i in &md.code {
        if let Instr::Op(op) = i {
            match op {
                Op::GetField { obj: Reg(0), field, .. } if inst.contains(field) => {
                    seen.insert(*field);
                }
                Op::GetStatic { field, .. } if statics.contains(field) => {
                    seen.insert(*field);
                }
                _ => {}
            }
        }
    }
    seen.len()
}

fn parts_eq(a: &[(FieldId, Value)], b: &[(FieldId, Value)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&(fa, va), &(fb, vb))| fa == fb && va.key_eq(vb))
}

impl MutationHandler for MutationEngine {
    fn on_instance_store(
        &mut self,
        vm: &mut VmState,
        obj: ObjRef,
        _class: ClassId,
        _field: FieldId,
    ) {
        self.update_object_tib(vm, obj);
    }

    fn on_static_store(&mut self, vm: &mut VmState, field: FieldId) {
        if let Some(deps) = self.static_dep.get(&field) {
            for &ci in deps.clone().iter() {
                self.refresh_class(vm, ci);
            }
        }
    }

    fn on_ctor_exit(&mut self, vm: &mut VmState, obj: ObjRef, _class: ClassId) {
        self.update_object_tib(vm, obj);
    }

    fn on_recompiled(&mut self, vm: &mut VmState, method: MethodId, level: u8) {
        // Mutable method reaching the mutation level: generate and install
        // special code (Fig. 5).
        if level >= self.plan.mutation_level {
            if let Some(&(ci, mi)) = self.method_index.get(&method) {
                self.generate_specials(vm, ci, mi, level);
                self.refresh_class(vm, ci);
            }
        }
        // Any recompile: keep special TIBs in sync with class TIBs for the
        // slots the engine does not manage.
        for ci in 0..self.rt.len() {
            self.sync_unmanaged_slots(vm, ci);
            // Mutable slots may need refreshing too (general code changed).
            self.refresh_class(vm, ci);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{build_plan, AnalysisConfig};
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};
    use dchm_profile::{profile_field_values, profile_hot_methods};

    /// The paper's Figure 2 program, sized down: SalaryEmployee.raise()
    /// branches 4 ways on `grade`; main loops raise() over an array of
    /// employees.
    fn salarydb(employees: i64, iters: i64) -> (dchm_bytecode::Program, ClassId, FieldId) {
        let mut pb = ProgramBuilder::new();
        let employee = pb.class("Employee").build();
        let salary = pb.private_field(employee, "salary", Ty::Double);
        pb.trivial_ctor(employee);
        let mut m = pb.method(employee, "raise", MethodSig::void());
        m.ret(None);
        m.build();

        let hourly = pb.class("HourlyEmployee").extends(employee).build();
        pb.trivial_ctor(hourly);
        let mut m = pb.method(hourly, "raise", MethodSig::void());
        m.ret(None);
        m.build();

        let sal = pb.class("SalaryEmployee").extends(employee).build();
        let grade = pb.private_field(sal, "grade", Ty::Int);
        let mut m = pb.ctor(sal, vec![Ty::Int]);
        let this = m.this();
        let g = m.param(0);
        m.put_field(this, grade, g);
        m.ret(None);
        m.build();

        let mut m = pb.method(sal, "raise", MethodSig::void());
        let this = m.this();
        let g = m.reg();
        m.get_field(g, this, grade);
        let s = m.reg();
        m.get_field(s, this, salary);
        let l1 = m.label();
        let l2 = m.label();
        let l3 = m.label();
        let done = m.label();
        m.br_icmp_imm(CmpOp::Ne, g, 0, l1);
        let k = m.imm_d(1.0);
        m.dadd(s, s, k);
        m.jmp(done);
        m.bind(l1);
        m.br_icmp_imm(CmpOp::Ne, g, 1, l2);
        let k = m.imm_d(2.0);
        m.dadd(s, s, k);
        m.jmp(done);
        m.bind(l2);
        m.br_icmp_imm(CmpOp::Ne, g, 2, l3);
        let k = m.imm_d(1.01);
        m.dmul(s, s, k);
        m.jmp(done);
        m.bind(l3);
        let k = m.imm_d(1.02);
        m.dmul(s, s, k);
        m.bind(done);
        m.put_field(this, salary, s);
        m.ret(None);
        m.build();

        // main: build array, loop raise(), sink salaries.
        let mut m = pb.static_method(sal, "main", MethodSig::void());
        let n = m.imm(employees);
        let arr = m.reg();
        m.new_arr(arr, dchm_bytecode::ElemKind::Ref, n);
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.br_icmp(CmpOp::Ge, i, n, done);
        let o = m.reg();
        let four = m.imm(4);
        let g = m.reg();
        m.irem(g, i, four);
        m.new_obj(o, sal);
        m.call_ctor(o, sal, vec![g]);
        m.astore(arr, i, o);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);

        let it = m.reg();
        m.const_i(it, 0);
        let ohead = m.label();
        let odone = m.label();
        m.bind(ohead);
        let lim = m.imm(iters);
        m.br_icmp(CmpOp::Ge, it, lim, odone);
        let j = m.reg();
        m.const_i(j, 0);
        let ihead = m.label();
        let idone = m.label();
        m.bind(ihead);
        m.br_icmp(CmpOp::Ge, j, n, idone);
        let o = m.reg();
        m.aload(o, arr, j);
        m.check_cast(o, employee);
        m.call_virtual(None, o, "raise", vec![]);
        m.iadd_imm(j, j, 1);
        m.jmp(ihead);
        m.bind(idone);
        m.iadd_imm(it, it, 1);
        m.jmp(ohead);
        m.bind(odone);

        // Sink all salaries for output comparison.
        let j = m.reg();
        m.const_i(j, 0);
        let shead = m.label();
        let sdone = m.label();
        m.bind(shead);
        m.br_icmp(CmpOp::Ge, j, n, sdone);
        let o = m.reg();
        m.aload(o, arr, j);
        let sv = m.reg();
        m.get_field(sv, o, salary);
        m.sink_double(sv);
        m.iadd_imm(j, j, 1);
        m.jmp(shead);
        m.bind(sdone);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        (pb.finish().unwrap(), sal, grade)
    }

    fn fast_config() -> VmConfig {
        VmConfig {
            sample_period: 15_000,
            opt1_samples: 2,
            opt2_samples: 5,
            ..Default::default()
        }
    }

    fn engine_for(p: &dchm_bytecode::Program) -> MutationEngine {
        let hot = profile_hot_methods(p.clone(), fast_config(), |vm| {
            vm.run_entry().unwrap();
        });
        let cfg = AnalysisConfig::default();
        let cands = crate::analysis::find_state_fields(p, &hot, &cfg);
        let values = profile_field_values(
            p.clone(),
            fast_config(),
            cands.iter().map(|c| c.field),
            |vm| {
                vm.run_entry().unwrap();
            },
        );
        let plan = build_plan(p, &hot, &values, &cfg);
        let olc = crate::olc::analyze_olc(
            p,
            Some(&plan.classes.iter().map(|c| c.class).collect()),
        );
        MutationEngine::new(plan, olc)
    }

    #[test]
    fn salarydb_plan_finds_four_grades() {
        let (p, sal, grade) = salarydb(64, 40);
        let engine = engine_for(&p);
        let mc = engine.plan.class(sal).expect("SalaryEmployee mutable");
        assert_eq!(mc.instance_state_fields, vec![grade]);
        assert_eq!(mc.hot_states.len(), 4, "{:?}", mc.hot_states);
        assert_eq!(mc.static_state_fields.len(), 0);
    }

    #[test]
    fn mutation_preserves_output_and_speeds_up() {
        let (p, _, _) = salarydb(64, 120);

        // Baseline: no mutation.
        let mut base = Vm::new(p.clone(), fast_config());
        base.run_entry().unwrap();
        let base_checksum = base.state.output.checksum;
        let base_cycles = base.state.stats.exec_cycles;

        // Mutation on.
        let engine = engine_for(&p);
        let mut vm = engine.attach(p, fast_config());
        vm.run_entry().unwrap();
        assert_eq!(
            vm.state.output.checksum, base_checksum,
            "mutation must not change observable behaviour"
        );
        // Special TIBs exist and objects were flipped onto them.
        assert!(vm.stats().special_tibs >= 4);
        assert!(vm.stats().tib_flips > 0);
        assert!(vm.stats().special_compiles >= 4);
        // Headline result: execution cycles drop.
        let mut_cycles = vm.state.stats.exec_cycles;
        assert!(
            mut_cycles < base_cycles,
            "mutation should speed up SalaryDB: {mut_cycles} vs {base_cycles}"
        );
    }

    #[test]
    fn object_tib_follows_state_changes() {
        // Build a tiny program, install a hand-written plan, drive stores
        // from bytecode and watch the TIB pointer move.
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let f = pb.instance_field(c, "st", Ty::Int);
        pb.trivial_ctor(c);
        let mut m = pb.method(c, "get", MethodSig::new(vec![], Some(Ty::Int)));
        let this = m.this();
        let r = m.reg();
        m.get_field(r, this, f);
        m.ret(Some(r));
        let get = m.build();
        let mut m = pb.method(c, "set", MethodSig::new(vec![Ty::Int], None));
        let this = m.this();
        let v = m.param(0);
        m.put_field(this, f, v);
        m.ret(None);
        m.build();
        let mut m = pb.static_method(c, "mk", MethodSig::new(vec![], Some(Ty::Ref(c))));
        let o = m.reg();
        m.new_init(o, c, vec![]);
        m.ret(Some(o));
        let mk = m.build();
        let mut m = pb.static_method(c, "setv", MethodSig::new(vec![Ty::Ref(c), Ty::Int], None));
        let o = m.param(0);
        let v = m.param(1);
        m.call_virtual(None, o, "set", vec![v]);
        m.ret(None);
        let setv = m.build();
        let p = pb.finish().unwrap();

        let plan = MutationPlan {
            classes: vec![crate::plan::MutableClass {
                class: c,
                instance_state_fields: vec![f],
                static_state_fields: vec![],
                hot_states: vec![HotState {
                    instance_values: vec![(f, Value::Int(7))],
                    static_values: vec![],
                    frequency: 1.0,
                }],
                mutable_methods: vec![get],
                field_scores: vec![],
            }],
            mutation_level: 2,
            k: 0,
            emit_guards: true,
        };
        let engine = MutationEngine::new(plan, OlcReport::default());
        let mut vm = engine.attach(p, VmConfig::default());

        let obj = vm.call_static(mk, &[]).unwrap().unwrap();
        let Value::Ref(oref) = obj else { panic!() };
        vm.state.add_handle(oref);
        let class_tib = vm.state.class_tib(c);
        // Fresh object: state 0 doesn't match hot state 7.
        assert_eq!(vm.state.heap.object(oref).tib, class_tib);

        vm.call_static(setv, &[obj, Value::Int(7)]).unwrap();
        let special = vm.state.heap.object(oref).tib;
        assert_ne!(special, class_tib, "store of 7 must flip to special TIB");

        vm.call_static(setv, &[obj, Value::Int(3)]).unwrap();
        assert_eq!(
            vm.state.heap.object(oref).tib,
            class_tib,
            "leaving the hot state must flip back"
        );
        assert!(vm.stats().tib_flips >= 2);
    }
}
