//! Static mutation-plan synthesis for machine-generated programs.
//!
//! The ordinary pipeline ([`crate::pipeline::prepare`]) derives a
//! [`MutationPlan`] from a *profiling run*. The differential fuzzer
//! (`dchm-fuzz`) cannot afford one profiling run per generated program per
//! config, and more importantly needs the *same* plan in every
//! configuration of its lattice so that mutation-on runs are comparable.
//! This module derives the plan purely statically, exploiting the shape
//! contract of generated programs:
//!
//! * **State fields** are the `int` instance fields a class's constructor
//!   assigns compile-time constants to (through `this`, straight-line
//!   tracking). Those constants form the class's *primary* hot state —
//!   exactly what a profile of the allocation burst would observe.
//! * **Alternate hot states** come from the other constants the program
//!   text stores to a state field: direct constant stores anywhere, and
//!   constant call-site arguments mapped through single-store setter
//!   methods (`flip(v) { this.f = v; }`). Each alternate value yields one
//!   hot state differing from the primary in that single field, mirroring
//!   how the paper's histograms surface a few hot values per field.
//! * **Static state** works the same way: a static `int` field read by the
//!   declaring class's methods is a state field with its initial value as
//!   the primary binding.
//! * **Mutable methods** follow the paper's Figure 6 rule: methods
//!   *declared by the class* that read a state field (instance reads
//!   through `this` only, the only reads specialization can fold).
//!
//! Over-approximation is safe by construction: a hot state that is never
//! entered at run time just produces special code and TIBs that no object
//! ever adopts, which the differential oracle treats like any other
//! mutation-on activity.

use crate::plan::{HotState, MutableClass, MutationPlan};
use dchm_bytecode::{FieldId, Instr, MethodKind, Op, Program, Reg, Ty, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Tunables for [`synthesize_plan`].
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Optimization level at which special code is generated.
    pub mutation_level: u8,
    /// Plant state guards in special code (the safe default).
    pub emit_guards: bool,
    /// Per-class cap on instance state fields (lowest field ids win).
    pub max_state_fields: usize,
    /// Per-class cap on hot states, primary included (the paper's `R`).
    pub max_states: usize,
    /// Also derive static-state classes (class-TIB specialization).
    pub include_statics: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            mutation_level: 2,
            emit_guards: true,
            max_state_fields: 2,
            max_states: 4,
            include_statics: true,
        }
    }
}

/// Walks `code` linearly, tracking integer constants per register, and
/// calls `visit` on every op with the constants live *before* it executes.
/// Straight-line exact; across branches it over-approximates (good enough
/// for hot-state discovery, see module docs).
fn scan_consts(code: &[Instr], mut visit: impl FnMut(&Op, &HashMap<Reg, i64>)) {
    let mut consts: HashMap<Reg, i64> = HashMap::new();
    for instr in code {
        let Instr::Op(op) = instr else { continue };
        visit(op, &consts);
        match op {
            Op::ConstI { dst, val } => {
                consts.insert(*dst, *val);
            }
            _ => {
                if let Some(d) = op.def() {
                    consts.remove(&d);
                }
            }
        }
    }
}

/// `true` for fields that can participate in hot states: plain `int`.
fn is_state_ty(p: &Program, f: FieldId) -> bool {
    p.field(f).ty == Ty::Int
}

/// Synthesizes a mutation plan for `p` without running it.
///
/// Deterministic: classes, fields, methods and hot states come out in id
/// order, so the same program always yields the identical plan — a
/// prerequisite for the fuzz lattice, where every mutation-on config must
/// install the same plan.
pub fn synthesize_plan(p: &Program, cfg: &SynthConfig) -> MutationPlan {
    // -- Pass 1: setter shapes ------------------------------------------
    // Instance methods that store a parameter straight into a `this` field:
    // selector-keyed because call sites dispatch by selector. Static
    // methods that store a parameter into a static field, keyed by id.
    let mut inst_setters: HashMap<u32, Vec<(FieldId, u16)>> = HashMap::new();
    let mut static_setters: HashMap<usize, Vec<(FieldId, u16)>> = HashMap::new();
    for (mi, md) in p.methods.iter().enumerate() {
        let nparams = md.sig.params.len() as u16;
        for instr in &md.code {
            let Instr::Op(op) = instr else { continue };
            match (md.kind, op) {
                (MethodKind::Instance, Op::PutField { obj, field, src })
                    if *obj == Reg(0) && src.0 >= 1 && src.0 <= nparams =>
                {
                    inst_setters
                        .entry(md.selector.0)
                        .or_default()
                        .push((*field, src.0 - 1));
                }
                (MethodKind::Static, Op::PutStatic { field, src }) if src.0 < nparams => {
                    static_setters.entry(mi).or_default().push((*field, src.0));
                }
                _ => {}
            }
        }
    }

    // -- Pass 2: constant observations ----------------------------------
    // Every constant value the program text can store into each field:
    // direct constant stores plus constant arguments through setters.
    let mut observed: BTreeMap<FieldId, BTreeSet<i64>> = BTreeMap::new();
    for md in &p.methods {
        scan_consts(&md.code, |op, consts| {
            let mut observe = |f: FieldId, v: i64| {
                if is_state_ty(p, f) {
                    observed.entry(f).or_default().insert(v);
                }
            };
            match op {
                Op::PutField { field, src, .. } | Op::PutStatic { field, src } => {
                    if let Some(&v) = consts.get(src) {
                        observe(*field, v);
                    }
                }
                Op::CallVirtual { sel, args, .. }
                | Op::CallSpecial { sel, args, .. }
                | Op::CallInterface { sel, args, .. } => {
                    if let Some(setters) = inst_setters.get(&sel.0) {
                        for &(f, idx) in setters {
                            if let Some(&v) =
                                args.get(idx as usize).and_then(|r| consts.get(r))
                            {
                                observe(f, v);
                            }
                        }
                    }
                }
                Op::CallStatic { method, args, .. } => {
                    if let Some(setters) = static_setters.get(&method.index()) {
                        for &(f, idx) in setters {
                            if let Some(&v) =
                                args.get(idx as usize).and_then(|r| consts.get(r))
                            {
                                observe(f, v);
                            }
                        }
                    }
                }
                _ => {}
            }
        });
    }

    // -- Pass 3: per-class plan entries ---------------------------------
    let mut classes = Vec::new();
    for cid in p.concrete_classes() {
        let c = p.class(cid);

        // Primary instance bindings: constants the ctor stores through
        // `this` into this class's own int fields (straight-line exact for
        // generated ctors; last write wins).
        let mut primary: BTreeMap<FieldId, i64> = BTreeMap::new();
        if let Some(&ctor) = c
            .methods
            .iter()
            .find(|&&m| p.method(m).kind == MethodKind::Constructor)
        {
            scan_consts(&p.method(ctor).code, |op, consts| {
                if let Op::PutField { obj, field, src } = op {
                    if *obj == Reg(0)
                        && p.field(*field).owner == cid
                        && is_state_ty(p, *field)
                    {
                        match consts.get(src) {
                            Some(&v) => {
                                primary.insert(*field, v);
                            }
                            None => {
                                primary.remove(field);
                            }
                        }
                    }
                }
            });
        }
        let instance_state_fields: Vec<FieldId> =
            primary.keys().copied().take(cfg.max_state_fields).collect();
        primary.retain(|f, _| instance_state_fields.contains(f));

        // Static state: this class's static int fields that its own
        // methods read; primary binding is the declared initial value.
        let mut static_primary: BTreeMap<FieldId, i64> = BTreeMap::new();
        if cfg.include_statics {
            let read_by_self = |f: FieldId| {
                c.methods.iter().any(|&m| {
                    p.method(m).code.iter().any(|i| {
                        matches!(i, Instr::Op(Op::GetStatic { field, .. }) if *field == f)
                    })
                })
            };
            for &f in &c.fields {
                let fd = p.field(f);
                if fd.is_static && is_state_ty(p, f) && read_by_self(f) {
                    if let Value::Int(v) = fd.initial {
                        static_primary.insert(f, v);
                    }
                }
            }
        }
        let static_state_fields: Vec<FieldId> = static_primary.keys().copied().collect();

        if instance_state_fields.is_empty() && static_state_fields.is_empty() {
            continue;
        }

        // Mutable methods (Fig. 6): declared here, read a state field the
        // only way specialization can fold — instance fields through
        // `this`, statics through GetStatic. Private methods are excluded:
        // `invokespecial` never dispatches through a (special) TIB, so
        // their specials would be unreachable.
        let mutable_methods: Vec<_> = c
            .methods
            .iter()
            .copied()
            .filter(|&m| {
                let md = p.method(m);
                if md.visibility == dchm_bytecode::Visibility::Private {
                    return false;
                }
                match md.kind {
                    MethodKind::Instance => md.code.iter().any(|i| match i {
                        Instr::Op(Op::GetField { obj, field, .. }) => {
                            *obj == Reg(0) && instance_state_fields.contains(field)
                        }
                        Instr::Op(Op::GetStatic { field, .. }) => {
                            static_state_fields.contains(field)
                        }
                        _ => false,
                    }),
                    MethodKind::Static => md.code.iter().any(|i| {
                        matches!(i, Instr::Op(Op::GetStatic { field, .. })
                                 if static_state_fields.contains(field))
                    }),
                    _ => false,
                }
            })
            .collect();

        // Hot states: the primary (ctor constants + static initials),
        // then one variant per alternate observed value, single-field
        // substitution, in (field, value) order, capped at max_states.
        let base_instance: Vec<(FieldId, Value)> = primary
            .iter()
            .map(|(&f, &v)| (f, Value::Int(v)))
            .collect();
        let base_static: Vec<(FieldId, Value)> = static_primary
            .iter()
            .map(|(&f, &v)| (f, Value::Int(v)))
            .collect();
        let mut hot_states = vec![HotState {
            instance_values: base_instance.clone(),
            static_values: base_static.clone(),
            frequency: 1.0,
        }];
        let state_fields = instance_state_fields
            .iter()
            .map(|&f| (f, true))
            .chain(static_state_fields.iter().map(|&f| (f, false)));
        'outer: for (f, is_instance) in state_fields {
            let primary_v = if is_instance {
                primary[&f]
            } else {
                static_primary[&f]
            };
            let Some(vals) = observed.get(&f) else { continue };
            for &v in vals {
                if v == primary_v {
                    continue;
                }
                if hot_states.len() >= cfg.max_states {
                    break 'outer;
                }
                let subst = |vec: &[(FieldId, Value)]| {
                    vec.iter()
                        .map(|&(vf, vv)| if vf == f { (vf, Value::Int(v)) } else { (vf, vv) })
                        .collect::<Vec<_>>()
                };
                hot_states.push(HotState {
                    instance_values: if is_instance {
                        subst(&base_instance)
                    } else {
                        base_instance.clone()
                    },
                    static_values: if is_instance {
                        base_static.clone()
                    } else {
                        subst(&base_static)
                    },
                    frequency: 1.0 / cfg.max_states as f64,
                });
            }
        }

        classes.push(MutableClass {
            class: cid,
            instance_state_fields,
            static_state_fields,
            hot_states,
            mutable_methods,
            field_scores: Vec::new(),
        });
    }

    MutationPlan {
        classes,
        mutation_level: cfg.mutation_level,
        k: 0,
        emit_guards: cfg.emit_guards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{MethodSig, ProgramBuilder};

    /// class Dev { int mode; static int LEVEL = 3;
    ///   Dev() { mode = 7; }
    ///   int work() { return mode + LEVEL; }
    ///   void flip(int v) { mode = v; }
    ///   static void level(int v) { LEVEL = v; } }
    /// main: d = new Dev(); d.flip(9); Dev.level(5); sink(d.work());
    fn sample() -> (Program, ClassId, FieldId, FieldId) {
        let mut pb = ProgramBuilder::new();
        let dev = pb.class("Dev").build();
        let mode = pb.instance_field(dev, "mode", Ty::Int);
        let level = pb.static_field(dev, "LEVEL", Ty::Int, Value::Int(3));

        let mut m = pb.ctor(dev, vec![]);
        let this = m.this();
        let seven = m.imm(7);
        m.put_field(this, mode, seven);
        m.ret(None);
        m.build();

        let mut m = pb.method(dev, "work", MethodSig::new(vec![], Some(Ty::Int)));
        let this = m.this();
        let a = m.reg();
        m.get_field(a, this, mode);
        let b = m.reg();
        m.get_static(b, level);
        let out = m.reg();
        m.iadd(out, a, b);
        m.ret(Some(out));
        m.build();

        let mut m = pb.method(dev, "flip", MethodSig::new(vec![Ty::Int], None));
        let this = m.this();
        let v = m.param(0);
        m.put_field(this, mode, v);
        m.ret(None);
        m.build();

        let mut m = pb.static_method(dev, "level", MethodSig::new(vec![Ty::Int], None));
        let v = m.param(0);
        m.put_static(level, v);
        m.ret(None);
        let level_m = m.build();

        let mut m = pb.static_method(dev, "main", MethodSig::void());
        let d = m.reg();
        m.new_init(d, dev, vec![]);
        let nine = m.imm(9);
        m.call_virtual(None, d, "flip", vec![nine]);
        let five = m.imm(5);
        m.call_static(None, level_m, vec![five]);
        let r = m.reg();
        m.call_virtual(Some(r), d, "work", vec![]);
        m.sink_int(r);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        (pb.finish().unwrap(), dev, mode, level)
    }

    use dchm_bytecode::{ClassId, Program};

    #[test]
    fn synthesizes_state_fields_states_and_mutable_methods() {
        let (p, dev, mode, level) = sample();
        let plan = synthesize_plan(&p, &SynthConfig::default());
        assert_eq!(plan.classes.len(), 1);
        let mc = &plan.classes[0];
        assert_eq!(mc.class, dev);
        assert_eq!(mc.instance_state_fields, vec![mode]);
        assert_eq!(mc.static_state_fields, vec![level]);
        // Primary state {mode=7, LEVEL=3}, plus the setter-observed
        // alternates mode=9 and LEVEL=5.
        assert_eq!(mc.hot_states.len(), 3);
        assert_eq!(
            mc.hot_states[0].instance_values,
            vec![(mode, Value::Int(7))]
        );
        assert_eq!(mc.hot_states[0].static_values, vec![(level, Value::Int(3))]);
        assert!(mc
            .hot_states
            .iter()
            .any(|h| h.instance_values == vec![(mode, Value::Int(9))]));
        assert!(mc
            .hot_states
            .iter()
            .any(|h| h.static_values == vec![(level, Value::Int(5))]));
        // `work` reads both state fields; `flip`/`level`/ctor/main do not
        // read any.
        assert_eq!(mc.mutable_methods.len(), 1);
        assert_eq!(p.method(mc.mutable_methods[0]).name, "work");
        assert!(plan.emit_guards);
        assert_eq!(plan.mutation_level, 2);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let (p, ..) = sample();
        let a = synthesize_plan(&p, &SynthConfig::default());
        let b = synthesize_plan(&p, &SynthConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn classes_without_state_are_skipped() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Plain").build();
        pb.trivial_ctor(c);
        let mut m = pb.static_method(c, "main", MethodSig::void());
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let plan = synthesize_plan(&p, &SynthConfig::default());
        assert!(plan.classes.is_empty());
    }

    #[test]
    fn state_field_cap_respected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Wide").build();
        let fields: Vec<FieldId> = (0..4)
            .map(|i| pb.instance_field(c, &format!("f{i}"), Ty::Int))
            .collect();
        let mut m = pb.ctor(c, vec![]);
        let this = m.this();
        for (i, &f) in fields.iter().enumerate() {
            let v = m.imm(i as i64);
            m.put_field(this, f, v);
        }
        m.ret(None);
        m.build();
        let mut m = pb.method(c, "sum", MethodSig::new(vec![], Some(Ty::Int)));
        let this = m.this();
        let acc = m.imm(0);
        for &f in &fields {
            let r = m.reg();
            m.get_field(r, this, f);
            m.iadd(acc, acc, r);
        }
        m.ret(Some(acc));
        m.build();
        let p = pb.finish().unwrap();
        let plan = synthesize_plan(
            &p,
            &SynthConfig {
                max_state_fields: 2,
                ..Default::default()
            },
        );
        assert_eq!(plan.classes[0].instance_state_fields.len(), 2);
        assert_eq!(plan.classes[0].hot_states[0].instance_values.len(), 2);
    }
}
