//! Object-lifetime-constant analysis (paper Section 4, Figure 8).
//!
//! An *object lifetime constant* is an instance field that a constructor
//! sets to a compile-time constant and that nothing ever overwrites. When a
//! *private reference field* of an exact type is always assigned a fresh
//! instance built by that constructor, and the reference never escapes its
//! declaring class, every method call through that reference may be inlined
//! with those fields specialized to their constants — with **no value
//! guards** (the paper's Fig. 7 `DisplayScreen.rows/cols` example).
//!
//! The escape requirements follow the paper verbatim and are conservative:
//! the reference is never stored to another field, never passed as an
//! argument, never returned (we additionally treat plain register copies as
//! escapes to keep the analysis linear).

use dchm_bytecode::{
    ClassId, FieldId, Instr, MethodId, MethodKind, Op, Program, Reg, Value, Visibility,
};
use dchm_vm::OlcInfo;
use std::collections::{HashMap, HashSet};

/// The analysis result: OLC info per qualifying private reference field.
#[derive(Clone, Debug, Default)]
pub struct OlcReport {
    /// Keyed by the private reference field.
    pub infos: HashMap<FieldId, OlcInfo>,
}

impl OlcReport {
    /// Number of qualifying reference fields.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True if nothing qualified.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }
}

/// Step 1: for `class`, the fields its constructor assigns to constants
/// (`<field, constructor, value>` tuples), provided nothing else ever
/// assigns them.
fn ctor_constants(program: &Program, class: ClassId) -> HashMap<FieldId, Value> {
    let Some(&ctor) = program
        .class(class)
        .methods
        .iter()
        .find(|&&m| program.method(m).kind == MethodKind::Constructor)
    else {
        return HashMap::new();
    };

    // Constants assigned to `this` fields in the constructor.
    let mut consts: HashMap<Reg, Value> = HashMap::new();
    let mut assigned: HashMap<FieldId, Option<Value>> = HashMap::new(); // None = non-const
    for instr in &program.method(ctor).code {
        let Instr::Op(op) = instr else { continue };
        match op {
            Op::ConstI { dst, val } => {
                consts.insert(*dst, Value::Int(*val));
            }
            Op::ConstD { dst, val } => {
                consts.insert(*dst, Value::Double(*val));
            }
            Op::PutField { obj, field, src } if *obj == Reg(0) => {
                let v = consts.get(src).copied();
                match assigned.get(field) {
                    // Second assignment in the ctor: keep only if same const.
                    Some(Some(prev)) if v.is_some_and(|nv| nv.key_eq(*prev)) => {}
                    Some(_) => {
                        assigned.insert(*field, None);
                    }
                    None => {
                        assigned.insert(*field, v);
                    }
                }
            }
            _ => {
                if let Some(d) = op.def() {
                    consts.remove(&d);
                }
            }
        }
    }

    // Global check: the field is never assigned outside this constructor.
    let mut out = HashMap::new();
    'field: for (field, v) in assigned {
        let Some(v) = v else { continue };
        for (mi, md) in program.methods.iter().enumerate() {
            if MethodId::from_index(mi) == ctor {
                continue;
            }
            for instr in &md.code {
                if let Instr::Op(Op::PutField { field: f, .. } | Op::PutStatic { field: f, .. }) =
                    instr
                {
                    if *f == field {
                        continue 'field;
                    }
                }
            }
        }
        out.insert(field, v);
    }
    out
}

/// How a register holding a fresh `new C` progresses toward a field store.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Fresh {
    New(ClassId),
    Constructed(ClassId),
}

/// Step 2 per declaring class: does `ref_field` only ever receive
/// `new C(...)` values (same class, its single constructor)?
fn always_fresh_assignment(program: &Program, ref_field: FieldId, target: ClassId) -> bool {
    let mut saw_assignment = false;
    for md in &program.methods {
        let mut fresh: HashMap<Reg, Fresh> = HashMap::new();
        for instr in &md.code {
            let Instr::Op(op) = instr else {
                continue;
            };
            match op {
                Op::New { dst, class } => {
                    fresh.insert(*dst, Fresh::New(*class));
                }
                Op::CallSpecial {
                    class, obj, dst, ..
                } => {
                    if let Some(Fresh::New(c)) = fresh.get(obj).copied() {
                        if c == *class {
                            fresh.insert(*obj, Fresh::Constructed(c));
                        } else {
                            fresh.remove(obj);
                        }
                    }
                    if let Some(d) = dst {
                        fresh.remove(d);
                    }
                }
                Op::PutField { field, src, .. } | Op::PutStatic { field, src }
                    if *field == ref_field =>
                {
                    saw_assignment = true;
                    if fresh.get(src) != Some(&Fresh::Constructed(target)) {
                        return false;
                    }
                }
                _ => {
                    if let Some(d) = op.def() {
                        fresh.remove(&d);
                    }
                }
            }
        }
    }
    saw_assignment
}

/// Escape check: every load of `ref_field` is used only as a call receiver
/// or for field reads off the referee.
fn never_escapes(program: &Program, ref_field: FieldId) -> bool {
    for md in &program.methods {
        // Registers currently holding the reference.
        let mut held: HashSet<Reg> = HashSet::new();
        for instr in &md.code {
            match instr {
                Instr::Op(op) => {
                    // Check uses before processing the def.
                    let mut escapes = false;
                    match op {
                        Op::GetField { .. } | Op::ALen { .. } => {
                            // Reading through the reference is fine.
                        }
                        Op::CallVirtual { obj, args, .. }
                        | Op::CallSpecial { obj, args, .. }
                        | Op::CallInterface { obj, args, .. } => {
                            // Receiver position is fine; argument is escape.
                            let _ = obj;
                            if args.iter().any(|a| held.contains(a)) {
                                escapes = true;
                            }
                        }
                        Op::CallStatic { args, .. }
                            if args.iter().any(|a| held.contains(a)) => {
                                escapes = true;
                            }
                        Op::PutField { src, .. } | Op::PutStatic { src, .. }
                            // Re-storing to its own field is handled by the
                            // fresh-assignment rule; storing to anything is
                            // conservatively an escape unless it's the field
                            // itself (checked there).
                            if held.contains(src) => {
                                escapes = true;
                            }
                        Op::AStore { src, .. }
                            if held.contains(src) => {
                                escapes = true;
                            }
                        Op::Mov { src, .. } | Op::RefEq { a: src, .. }
                            // Copies are conservatively escapes (tracking
                            // aliases would complicate the linear scan).
                            if held.contains(src) => {
                                escapes = true;
                            }
                        _ => {}
                    }
                    if escapes {
                        return false;
                    }
                    if let Some(d) = op.def() {
                        held.remove(&d);
                    }
                    if let Op::GetField { dst, field, .. } | Op::GetStatic { dst, field } = op {
                        if *field == ref_field {
                            held.insert(*dst);
                        }
                    }
                }
                Instr::Ret(Some(r))
                    if held.contains(r) => {
                        return false;
                    }
                _ => {}
            }
        }
    }
    true
}

/// Runs the full Figure 8 analysis.
///
/// `targets` restricts which referenced classes are considered (the paper
/// analyzes private reference fields pointing at *mutable* classes); pass
/// `None` to consider every class.
pub fn analyze_olc(program: &Program, targets: Option<&HashSet<ClassId>>) -> OlcReport {
    let mut report = OlcReport::default();

    // Cache step 1 per class.
    let mut ctor_cache: HashMap<ClassId, HashMap<FieldId, Value>> = HashMap::new();

    for (fi, fd) in program.fields.iter().enumerate() {
        if fd.visibility != Visibility::Private {
            continue;
        }
        let dchm_bytecode::Ty::Ref(target) = fd.ty else {
            continue;
        };
        if let Some(ts) = targets {
            if !ts.contains(&target) {
                continue;
            }
        }
        let ref_field = FieldId::from_index(fi);
        let bindings = ctor_cache
            .entry(target)
            .or_insert_with(|| ctor_constants(program, target))
            .clone();
        if bindings.is_empty() {
            continue;
        }
        if !always_fresh_assignment(program, ref_field, target) {
            continue;
        }
        if !never_escapes(program, ref_field) {
            continue;
        }
        report.infos.insert(
            ref_field,
            OlcInfo {
                ref_field,
                exact_class: target,
                bindings,
            },
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{MethodSig, ProgramBuilder, Ty};

    /// Builds the paper's Figure 7 shape: `DisplayScreen { rows=24, cols=80 }`
    /// held by `DeliveryTransaction.deliveryScreen` (private, exact type).
    fn fig7(escape: bool, reassign_rows: bool) -> (dchm_bytecode::Program, FieldId, FieldId, FieldId, ClassId)
    {
        let mut pb = ProgramBuilder::new();
        let screen = pb.class("DisplayScreen").package("spec.jbb.infra").build();
        let rows = pb.instance_field(screen, "rows", Ty::Int);
        let cols = pb.instance_field(screen, "cols", Ty::Int);
        let mut m = pb.ctor(screen, vec![]);
        let this = m.this();
        let r = m.imm(24);
        m.put_field(this, rows, r);
        let c = m.imm(80);
        m.put_field(this, cols, c);
        m.ret(None);
        m.build();
        let mut m = pb.method(screen, "area", MethodSig::new(vec![], Some(Ty::Int)));
        let this = m.this();
        let a = m.reg();
        let b = m.reg();
        m.get_field(a, this, rows);
        m.get_field(b, this, cols);
        let out = m.reg();
        m.imul(out, a, b);
        m.ret(Some(out));
        m.build();
        if reassign_rows {
            let mut m = pb.method(screen, "resize", MethodSig::new(vec![Ty::Int], None));
            let this = m.this();
            let v = m.param(0);
            m.put_field(this, rows, v);
            m.ret(None);
            m.build();
        }

        let tx = pb.class("DeliveryTransaction").package("spec.jbb").build();
        let screen_field = pb.private_field(tx, "deliveryScreen", Ty::Ref(screen));
        let mut m = pb.ctor(tx, vec![]);
        let this = m.this();
        let s = m.reg();
        m.new_init(s, screen, vec![]);
        m.put_field(this, screen_field, s);
        m.ret(None);
        m.build();
        let mut m = pb.method(tx, "display", MethodSig::new(vec![], Some(Ty::Int)));
        let this = m.this();
        let s = m.reg();
        m.get_field(s, this, screen_field);
        let out = m.reg();
        m.call_virtual(Some(out), s, "area", vec![]);
        m.ret(Some(out));
        m.build();
        if escape {
            // leak(): returns the screen reference.
            let mut m = pb.method(tx, "leak", MethodSig::new(vec![], Some(Ty::Ref(screen))));
            let this = m.this();
            let s = m.reg();
            m.get_field(s, this, screen_field);
            m.ret(Some(s));
            m.build();
        }
        (pb.finish().unwrap(), rows, cols, screen_field, screen)
    }

    #[test]
    fn fig7_rows_cols_are_olc() {
        let (p, rows, cols, screen_field, screen) = fig7(false, false);
        let report = analyze_olc(&p, None);
        let info = report.infos.get(&screen_field).expect("deliveryScreen qualifies");
        assert_eq!(info.exact_class, screen);
        assert_eq!(info.bindings.get(&rows), Some(&Value::Int(24)));
        assert_eq!(info.bindings.get(&cols), Some(&Value::Int(80)));
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn escaping_reference_disqualifies() {
        let (p, _, _, screen_field, _) = fig7(true, false);
        let report = analyze_olc(&p, None);
        assert!(!report.infos.contains_key(&screen_field));
    }

    #[test]
    fn reassigned_field_is_not_constant() {
        let (p, rows, cols, screen_field, _) = fig7(false, true);
        let report = analyze_olc(&p, None);
        // deliveryScreen still qualifies, but only cols is constant: rows is
        // reassigned by resize().
        let info = report.infos.get(&screen_field).expect("still qualifies");
        assert!(!info.bindings.contains_key(&rows));
        assert_eq!(info.bindings.get(&cols), Some(&Value::Int(80)));
    }

    #[test]
    fn target_filter_respected() {
        let (p, _, _, screen_field, screen) = fig7(false, false);
        let none: HashSet<ClassId> = HashSet::new();
        assert!(analyze_olc(&p, Some(&none)).is_empty());
        let just: HashSet<ClassId> = [screen].into_iter().collect();
        assert!(analyze_olc(&p, Some(&just))
            .infos
            .contains_key(&screen_field));
    }

    #[test]
    fn non_private_field_ignored() {
        let mut pb = ProgramBuilder::new();
        let a = pb.class("A").build();
        let f = pb.instance_field(a, "x", Ty::Int);
        let mut m = pb.ctor(a, vec![]);
        let this = m.this();
        let v = m.imm(1);
        m.put_field(this, f, v);
        m.ret(None);
        m.build();
        let b = pb.class("B").build();
        // Package-visible (not private) reference field.
        let rf = pb.instance_field(b, "a", Ty::Ref(a));
        let mut m = pb.ctor(b, vec![]);
        let this = m.this();
        let s = m.reg();
        m.new_init(s, a, vec![]);
        m.put_field(this, rf, s);
        m.ret(None);
        m.build();
        let p = pb.finish().unwrap();
        assert!(analyze_olc(&p, None).is_empty());
    }
}
