//! Fully-online dynamic class hierarchy mutation — the paper's future work
//! (Sec. 9: "we will try to move our offline profiling and static analysis
//! to a JVM ... investigate the feasibility of a complete online Java
//! solution").
//!
//! An [`OnlineSession`] owns one VM and moves it through three phases while
//! the *same process* keeps running the application:
//!
//! 1. **Hot profiling** — plain execution; the adaptive system's per-method
//!    cycle counters play the role of the offline VTune run.
//! 2. **Value sampling** — EQ 1 runs over the live profile to pick
//!    candidate state fields; a [`ValueProfiler`] observer starts
//!    histogramming stores to them.
//! 3. **Mutating** — the plan is built from the live histograms, OLC
//!    analysis runs, and the engine is installed *in place*
//!    ([`MutationEngine::install_online`]): compiled methods are
//!    re-instrumented, live objects adopted, and execution continues with
//!    dynamic class hierarchy mutation active.
//!
//! Phase transitions happen between host calls (no on-stack replacement),
//! which for SPECjbb-style workloads means between warehouses — exactly
//! where a production JVM would take such actions.

use crate::analysis::{build_plan, find_state_fields, AnalysisConfig};
use crate::engine::MutationEngine;
use crate::olc::analyze_olc;
use crate::plan::MutationPlan;
use dchm_bytecode::Program;
use dchm_profile::{HotMethodReport, ValueProfiler};
use dchm_vm::{Vm, VmConfig};

/// Where the session currently is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Executing normally, accumulating the hot-method profile.
    HotProfiling,
    /// Candidate fields chosen; value histograms accumulating.
    ValueSampling,
    /// Plan installed; mutation active.
    Mutating,
}

/// A VM that profiles, analyzes and mutates itself while running.
pub struct OnlineSession {
    vm: Vm,
    phase: Phase,
    analysis: AnalysisConfig,
    profiler: Option<ValueProfiler>,
    candidates: Vec<dchm_bytecode::FieldId>,
    plan: Option<MutationPlan>,
}

impl OnlineSession {
    /// Starts a session in the hot-profiling phase.
    pub fn new(program: Program, vm_config: VmConfig, analysis: AnalysisConfig) -> Self {
        OnlineSession {
            vm: Vm::new(program, vm_config),
            phase: Phase::HotProfiling,
            analysis,
            profiler: None,
            candidates: Vec::new(),
            plan: None,
        }
    }

    /// The VM; drive the workload through this between phase transitions.
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Shared access to the VM (stats, output).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Turns on event tracing for the whole session (ring buffer of
    /// `capacity` events). Call before driving the workload to capture the
    /// mid-run mutation install — every `SpecialCompile`, adoption
    /// `TibFlip` and class-wide `StateTransition` lands in one stream.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.vm.enable_tracing(capacity);
    }

    /// The traced events so far, oldest first (empty if tracing is off).
    pub fn trace_events(&self) -> Vec<dchm_vm::trace::Stamped> {
        self.vm.trace_events()
    }

    /// The installed plan (after [`Self::install_mutation`]).
    pub fn plan(&self) -> Option<&MutationPlan> {
        self.plan.as_ref()
    }

    /// Transition 1 → 2: run EQ 1 over the live profile and start value
    /// sampling on the candidate state fields. Returns the candidate count.
    ///
    /// # Panics
    /// Panics if not in the hot-profiling phase.
    pub fn begin_value_sampling(&mut self) -> usize {
        assert_eq!(self.phase, Phase::HotProfiling, "wrong phase");
        let hot = HotMethodReport::from_vm(&self.vm);
        let candidates = find_state_fields(&self.vm.state.program, &hot, &self.analysis);
        self.candidates = candidates.iter().map(|c| c.field).collect();
        let profiler = ValueProfiler::new(self.candidates.iter().copied());
        self.profiler = Some(profiler.clone());
        self.vm.attach_observer(Box::new(profiler));
        self.phase = Phase::ValueSampling;
        candidates.len()
    }

    /// Heap census: seed the value histograms from the *current* values of
    /// the candidate fields — live objects for instance fields, the static
    /// area for static fields. Stores that happened before sampling began
    /// (constructor initialization during warm-up) are invisible to the
    /// observer; the heap itself carries their outcome.
    fn census(&self, values: &mut dchm_profile::ValueReport) {
        let vm = &self.vm;
        let program = &vm.state.program;
        for &f in &self.candidates {
            let fd = program.field(f);
            if fd.is_static {
                values.add_static(f, vm.state.get_static(f), 1);
            }
        }
        let inst: Vec<_> = self
            .candidates
            .iter()
            .copied()
            .filter(|&f| !program.field(f).is_static)
            .collect();
        if inst.is_empty() {
            return;
        }
        for (obj, class) in vm.state.heap.iter_live_objects() {
            for &f in &inst {
                let owner = program.field(f).owner;
                if program.is_subclass(class, owner) {
                    let v = vm.state.get_field(obj, f);
                    values.add_instance(class, f, v, 1);
                }
            }
        }
    }

    /// Transition 2 → 3: build the plan from the live histograms, run OLC
    /// analysis, and install the mutation engine into the running VM.
    /// Returns the number of mutable classes found.
    ///
    /// # Panics
    /// Panics if not in the value-sampling phase or if called mid-call.
    pub fn install_mutation(&mut self) -> usize {
        assert_eq!(self.phase, Phase::ValueSampling, "wrong phase");
        let profiler = self.profiler.take().expect("profiler attached");
        self.vm.detach_observer();
        let hot = HotMethodReport::from_vm(&self.vm);
        let mut values = profiler.report();
        self.census(&mut values);
        let program = self.vm.state.program.clone();
        let plan = build_plan(&program, &hot, &values, &self.analysis);
        let targets = plan.classes.iter().map(|c| c.class).collect();
        let olc = analyze_olc(&program, Some(&targets));
        let n = plan.classes.len();
        self.plan = Some(plan.clone());
        let engine = MutationEngine::new(plan, olc);
        engine.install_online(&mut self.vm);
        self.phase = Phase::Mutating;
        n
    }
}

impl std::fmt::Debug for OnlineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineSession")
            .field("phase", &self.phase)
            .field("plan", &self.plan.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty, Value};

    /// A worker whose mode is set once; the driver method runs one batch of
    /// calls per invocation (so phase transitions happen between batches).
    fn program() -> (Program, dchm_bytecode::MethodId, dchm_bytecode::MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Worker").build();
        let mode = pb.private_field(c, "mode", Ty::Int);
        let mut m = pb.ctor(c, vec![Ty::Int]);
        let this = m.this();
        let v = m.param(0);
        m.put_field(this, mode, v);
        m.ret(None);
        m.build();
        let mut m = pb.method(c, "step", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        let this = m.this();
        let x = m.param(0);
        let mv = m.reg();
        m.get_field(mv, this, mode);
        let alt = m.label();
        let out = m.reg();
        m.br_icmp_imm(CmpOp::Ne, mv, 2, alt);
        let k = m.imm(3);
        m.imul(out, x, k);
        m.ret(Some(out));
        m.bind(alt);
        let k = m.imm(5);
        m.imul(out, x, k);
        m.iadd_imm(out, out, 1);
        m.ret(Some(out));
        m.build();
        // setup() -> Worker stored in a static field.
        let holder = pb.static_field(c, "the", Ty::Ref(c), Value::Null);
        let mut m = pb.static_method(c, "setup", MethodSig::void());
        let o = m.reg();
        let two = m.imm(2);
        m.new_init(o, c, vec![two]);
        m.put_static(holder, o);
        m.ret(None);
        let setup = m.build();
        // batch(n): n steps on the worker.
        let mut m = pb.static_method(c, "batch", MethodSig::new(vec![Ty::Int], None));
        let n = m.param(0);
        let o = m.reg();
        m.get_static(o, holder);
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.br_icmp(CmpOp::Ge, i, n, done);
        let r = m.reg();
        m.call_virtual(Some(r), o, "step", vec![i]);
        m.sink_int(r);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(None);
        let batch = m.build();
        (pb.finish().unwrap(), setup, batch)
    }

    fn fast() -> VmConfig {
        VmConfig {
            sample_period: 8_000,
            opt1_samples: 2,
            opt2_samples: 4,
            ..Default::default()
        }
    }

    #[test]
    fn online_session_mutates_mid_run_and_preserves_output() {
        let (p, setup, batch) = program();

        // Reference: the whole run, never mutated.
        let mut plain = Vm::new(p.clone(), fast());
        plain.call_static(setup, &[]).unwrap();
        for _ in 0..6 {
            plain.call_static(batch, &[Value::Int(800)]).unwrap();
        }
        let expect = plain.state.output.checksum;

        // Online: profile for 2 batches, sample values for 2, mutate, run 2.
        let mut s = OnlineSession::new(p, fast(), AnalysisConfig::default());
        s.vm_mut().call_static(setup, &[]).unwrap();
        for _ in 0..2 {
            s.vm_mut().call_static(batch, &[Value::Int(800)]).unwrap();
        }
        assert_eq!(s.phase(), Phase::HotProfiling);
        let candidates = s.begin_value_sampling();
        assert!(candidates >= 1, "mode must be a candidate state field");
        for _ in 0..2 {
            s.vm_mut().call_static(batch, &[Value::Int(800)]).unwrap();
        }
        // `mode` was stored before sampling began (in setup) — the online
        // histogram may be empty. The session must handle both outcomes;
        // with a ctor store missing, the plan may be empty.
        let classes = s.install_mutation();
        assert_eq!(s.phase(), Phase::Mutating);
        for _ in 0..2 {
            s.vm_mut().call_static(batch, &[Value::Int(800)]).unwrap();
        }
        assert_eq!(
            s.vm().state.output.checksum,
            expect,
            "online mutation changed behaviour"
        );
        // If a plan was installed, the pre-existing worker object must have
        // been adopted (its state matched the hot value at install time).
        if classes > 0 {
            assert!(s.vm().stats().tib_flips >= 1, "existing object adopted");
            assert!(s.vm().stats().special_tibs >= 1);
        }
    }

    #[test]
    fn online_plan_found_when_stores_happen_during_sampling() {
        // Same program, but the driver re-creates the worker during the
        // sampling phase so the ctor store is observed.
        let (p, setup, batch) = program();
        let mut s = OnlineSession::new(p, fast(), AnalysisConfig::default());
        s.vm_mut().call_static(setup, &[]).unwrap();
        for _ in 0..2 {
            s.vm_mut().call_static(batch, &[Value::Int(800)]).unwrap();
        }
        s.begin_value_sampling();
        // Worker re-created: ctor stores mode=2 under observation.
        s.vm_mut().call_static(setup, &[]).unwrap();
        for _ in 0..2 {
            s.vm_mut().call_static(batch, &[Value::Int(800)]).unwrap();
        }
        let classes = s.install_mutation();
        assert!(classes >= 1, "Worker must be mutable when stores are seen");
        let plan = s.plan().unwrap();
        assert_eq!(plan.classes.len(), classes);
        // Continue running; specialized code must be reachable.
        for _ in 0..2 {
            s.vm_mut().call_static(batch, &[Value::Int(800)]).unwrap();
        }
        assert!(s.vm().stats().special_compiles >= 1);
        assert!(s.vm().stats().tib_flips >= 1);
    }
}
