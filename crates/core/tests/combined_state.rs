//! Hot states combining static AND instance parts — the hardest case in
//! Figure 4: the instance part selects the special TIB, the static part
//! gates whether that TIB carries special or general code.

use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty, Value};
use dchm_core::plan::{HotState, MutableClass, MutationPlan};
use dchm_core::{MutationEngine, OlcReport};
use dchm_vm::{CodeSlot, Vm, VmConfig};

fn fast() -> VmConfig {
    VmConfig {
        sample_period: 6_000,
        opt1_samples: 2,
        opt2_samples: 4,
        ..Default::default()
    }
}

/// `Meter.read()` depends on instance `unit` and static `calibration`.
#[test]
fn static_part_gates_special_code_in_special_tibs() {
    let mut pb = ProgramBuilder::new();
    let meter = pb.class("Meter").build();
    let unit = pb.instance_field(meter, "unit", Ty::Int);
    let calib = pb.static_field(meter, "calibration", Ty::Int, 1i64.into());
    let mut m = pb.ctor(meter, vec![Ty::Int]);
    let this = m.this();
    let u = m.param(0);
    m.put_field(this, unit, u);
    m.ret(None);
    m.build();
    // int read(int raw): branches on both fields.
    let mut m = pb.method(meter, "read", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let this = m.this();
    let raw = m.param(0);
    let uv = m.reg();
    m.get_field(uv, this, unit);
    let cv = m.reg();
    m.get_static(cv, calib);
    let out = m.reg();
    let metric = m.label();
    m.br_icmp_imm(CmpOp::Ne, uv, 0, metric);
    m.imul(out, raw, cv);
    m.ret(Some(out));
    m.bind(metric);
    let k = m.imm(10);
    m.imul(out, raw, k);
    m.imul(out, out, cv);
    m.ret(Some(out));
    m.build();
    // Host entry points.
    let mut m = pb.static_method(meter, "mk", MethodSig::new(vec![Ty::Int], Some(Ty::Ref(meter))));
    let u = m.param(0);
    let o = m.reg();
    m.new_init(o, meter, vec![u]);
    m.ret(Some(o));
    let mk = m.build();
    let mut m = pb.static_method(
        meter,
        "drive",
        MethodSig::new(vec![Ty::Ref(meter), Ty::Int], Some(Ty::Int)),
    );
    let o = m.param(0);
    let n = m.param(1);
    let acc = m.reg();
    m.const_i(acc, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let r = m.reg();
    m.call_virtual(Some(r), o, "read", vec![i]);
    m.iadd(acc, acc, r);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let drive = m.build();
    let mut m = pb.static_method(meter, "setcal", MethodSig::new(vec![Ty::Int], None));
    let v = m.param(0);
    m.put_static(calib, v);
    m.ret(None);
    let setcal = m.build();
    let p = pb.finish().unwrap();

    // Hand-written plan: hot state = (unit=0, calibration=1).
    let plan = MutationPlan {
        classes: vec![MutableClass {
            class: meter,
            instance_state_fields: vec![unit],
            static_state_fields: vec![calib],
            hot_states: vec![HotState {
                instance_values: vec![(unit, Value::Int(0))],
                static_values: vec![(calib, Value::Int(1))],
                frequency: 1.0,
            }],
            mutable_methods: vec![p.method_by_name(meter, "read").unwrap()],
            field_scores: vec![],
        }],
        mutation_level: 2,
        k: 0,
        emit_guards: true,
    };
    let engine = MutationEngine::new(plan, OlcReport::default());
    let mut vm = engine.attach(p.clone(), fast());

    // Baseline result for comparison.
    let mut base = Vm::new(p.clone(), fast());
    let bobj = base.call_static(mk, &[Value::Int(0)]).unwrap().unwrap();
    let Value::Ref(bref) = bobj else { panic!() };
    base.state.add_handle(bref);
    let mut expect = 0i64;
    for _ in 0..3 {
        let Value::Int(x) = base.call_static(drive, &[bobj, Value::Int(2000)]).unwrap().unwrap() else { panic!() };
        expect += x;
    }
    base.call_static(setcal, &[Value::Int(3)]).unwrap();
    let Value::Int(x) = base.call_static(drive, &[bobj, Value::Int(2000)]).unwrap().unwrap() else { panic!() };
    expect += x;

    // Mutated run.
    let obj = vm.call_static(mk, &[Value::Int(0)]).unwrap().unwrap();
    let Value::Ref(oref) = obj else { panic!() };
    vm.state.add_handle(oref);
    let class_tib = vm.state.class_tib(meter);
    // Instance part matches -> special TIB regardless of code state.
    assert_ne!(vm.state.heap.object(oref).tib, class_tib);
    let special_tib = vm.state.heap.object(oref).tib;

    let mut got = 0i64;
    for _ in 0..3 {
        let Value::Int(x) = vm.call_static(drive, &[obj, Value::Int(2000)]).unwrap().unwrap() else { panic!() };
        got += x;
    }
    // By now read() is hot: special code installed in the special TIB while
    // calibration == 1 (the hot static value).
    let sel = vm.state.program.selector("read").unwrap();
    let vslot = vm.state.program.class(meter).vtable_slot(sel).unwrap();
    let slot_hot = vm.state.tib_slot(special_tib, vslot);
    let CodeSlot::Code(cid_hot) = slot_hot else {
        panic!("expected compiled code in special TIB")
    };
    assert!(
        vm.state.compiled(cid_hot).special,
        "special TIB must hold SPECIAL code while statics match"
    );

    // Leave the hot static state: special TIB must fall back to general
    // code (Fig. 4 bottom), but the object's TIB pointer stays special
    // (instance part still matches).
    vm.call_static(setcal, &[Value::Int(3)]).unwrap();
    assert_eq!(vm.state.heap.object(oref).tib, special_tib);
    let slot_cold = vm.state.tib_slot(special_tib, vslot);
    let CodeSlot::Code(cid_cold) = slot_cold else {
        panic!("expected compiled code")
    };
    assert!(
        !vm.state.compiled(cid_cold).special,
        "leaving the hot static state must restore general code"
    );
    let Value::Int(x) = vm.call_static(drive, &[obj, Value::Int(2000)]).unwrap().unwrap() else { panic!() };
    got += x;

    assert_eq!(got, expect, "combined-state mutation changed results");
}
