//! Engine semantics beyond the happy path: static-only mutable classes
//! (JTOC / class-TIB patching, Fig. 4 bottom), leaving a hot state,
//! multi-field joint states, and the Fig. 6 rule that subclass instances
//! are never mutated.

use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty, Value};
use dchm_core::plan::{HotState, MutableClass, MutationPlan};
use dchm_core::{MutationEngine, OlcReport};
use dchm_vm::{Vm, VmConfig};

fn fast() -> VmConfig {
    VmConfig {
        sample_period: 8_000,
        opt1_samples: 2,
        opt2_samples: 4,
        ..Default::default()
    }
}

/// Static-only mutable class: `Calc.scale()` branches on static `mode`.
/// The engine must patch statically-bound dispatch (the JTOC) when the
/// static state enters/leaves the hot value, with identical results.
#[test]
fn static_state_patches_jtoc_and_restores() {
    let mut pb = ProgramBuilder::new();
    let calc = pb.class("Calc").build();
    let mode = pb.static_field(calc, "mode", Ty::Int, 0i64.into());
    let mut m = pb.static_method(calc, "scale", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let x = m.param(0);
    let mv = m.reg();
    m.get_static(mv, mode);
    let other = m.label();
    let out = m.reg();
    m.br_icmp_imm(CmpOp::Ne, mv, 7, other);
    let two = m.imm(2);
    m.imul(out, x, two);
    m.ret(Some(out));
    m.bind(other);
    let three = m.imm(3);
    m.imul(out, x, three);
    m.iadd_imm(out, out, 1);
    m.ret(Some(out));
    let scale = m.build();

    // Driver: run a loop in mode 7 (hot), then switch to mode 1, loop again.
    let mut m = pb.static_method(calc, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let seven = m.imm(7);
    m.put_static(mode, seven);
    let acc = m.reg();
    m.const_i(acc, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let h1 = m.label();
    let d1 = m.label();
    m.bind(h1);
    let lim = m.imm(4000);
    m.br_icmp(CmpOp::Ge, i, lim, d1);
    let v = m.reg();
    m.call_static(Some(v), scale, vec![i]);
    m.iadd(acc, acc, v);
    m.iadd_imm(i, i, 1);
    m.jmp(h1);
    m.bind(d1);
    // Leave the hot state.
    let one = m.imm(1);
    m.put_static(mode, one);
    let j = m.reg();
    m.const_i(j, 0);
    let h2 = m.label();
    let d2 = m.label();
    m.bind(h2);
    let lim2 = m.imm(1000);
    m.br_icmp(CmpOp::Ge, j, lim2, d2);
    let v = m.reg();
    m.call_static(Some(v), scale, vec![j]);
    m.iadd(acc, acc, v);
    m.iadd_imm(j, j, 1);
    m.jmp(h2);
    m.bind(d2);
    m.ret(Some(acc));
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    let plan = MutationPlan {
        classes: vec![MutableClass {
            class: calc,
            instance_state_fields: vec![],
            static_state_fields: vec![mode],
            hot_states: vec![HotState {
                instance_values: vec![],
                static_values: vec![(mode, Value::Int(7))],
                frequency: 0.8,
            }],
            mutable_methods: vec![scale],
            field_scores: vec![],
        }],
        mutation_level: 2,
        k: 0,
        emit_guards: true,
    };

    let mut baseline = Vm::new(p.clone(), fast());
    let expect = baseline.run_entry().unwrap();

    let engine = MutationEngine::new(plan, OlcReport::default());
    let mut vm = engine.attach(p, fast());
    let got = vm.run_entry().unwrap();
    assert_eq!(got, expect, "static-state mutation changed results");
    // Special code was generated for the static method and installed via
    // the static dispatch override at some point.
    assert!(vm.stats().special_compiles >= 1);
    assert!(vm.stats().code_patches > 0);
    // After leaving the hot state the override must be gone.
    let scale_mid = vm.state.program.class(calc);
    let scale_id = scale_mid
        .methods
        .iter()
        .copied()
        .find(|&mm| vm.state.program.method(mm).name == "scale")
        .unwrap();
    assert_eq!(
        vm.state.static_override[scale_id.index()], None,
        "leaving the hot state must restore general dispatch"
    );
}

/// Joint two-field hot states: both fields must match for the special TIB;
/// changing either field transitions correctly.
#[test]
fn multi_field_joint_states() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("Pair").build();
    let a = pb.instance_field(c, "a", Ty::Int);
    let b = pb.instance_field(c, "b", Ty::Int);
    pb.trivial_ctor(c);
    let mut m = pb.method(c, "seta", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    m.put_field(this, a, v);
    m.ret(None);
    m.build();
    let mut m = pb.method(c, "setb", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    m.put_field(this, b, v);
    m.ret(None);
    m.build();
    let mut m = pb.method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let this = m.this();
    let av = m.reg();
    m.get_field(av, this, a);
    let bv = m.reg();
    m.get_field(bv, this, b);
    let out = m.reg();
    m.iadd(out, av, bv);
    m.ret(Some(out));
    let f = m.build();
    let mut m = pb.static_method(c, "mk", MethodSig::new(vec![], Some(Ty::Ref(c))));
    let o = m.reg();
    m.new_init(o, c, vec![]);
    m.ret(Some(o));
    let mk = m.build();
    let mut m = pb.static_method(c, "set", MethodSig::new(vec![Ty::Ref(c), Ty::Int, Ty::Int], None));
    let o = m.param(0);
    let x = m.param(1);
    let y = m.param(2);
    m.call_virtual(None, o, "seta", vec![x]);
    m.call_virtual(None, o, "setb", vec![y]);
    m.ret(None);
    let set = m.build();
    let p = pb.finish().unwrap();

    let plan = MutationPlan {
        classes: vec![MutableClass {
            class: c,
            instance_state_fields: vec![a, b],
            static_state_fields: vec![],
            hot_states: vec![
                HotState {
                    instance_values: vec![(a, Value::Int(1)), (b, Value::Int(2))],
                    static_values: vec![],
                    frequency: 0.5,
                },
                HotState {
                    instance_values: vec![(a, Value::Int(3)), (b, Value::Int(4))],
                    static_values: vec![],
                    frequency: 0.5,
                },
            ],
            mutable_methods: vec![f],
            field_scores: vec![],
        }],
        mutation_level: 2,
        k: 0,
        emit_guards: true,
    };
    let engine = MutationEngine::new(plan, OlcReport::default());
    let mut vm = engine.attach(p, fast());
    let obj = vm.call_static(mk, &[]).unwrap().unwrap();
    let Value::Ref(oref) = obj else { panic!() };
    vm.state.add_handle(oref);
    let class_tib = vm.state.class_tib(c);

    // (1,2) matches state 0.
    vm.call_static(set, &[obj, Value::Int(1), Value::Int(2)]).unwrap();
    let tib_12 = vm.state.heap.object(oref).tib;
    assert_ne!(tib_12, class_tib);

    // (1,4) matches nothing -> class TIB.
    vm.call_static(set, &[obj, Value::Int(1), Value::Int(4)]).unwrap();
    assert_eq!(vm.state.heap.object(oref).tib, class_tib);

    // (3,4) matches state 1 -> a *different* special TIB.
    vm.call_static(set, &[obj, Value::Int(3), Value::Int(4)]).unwrap();
    let tib_34 = vm.state.heap.object(oref).tib;
    assert_ne!(tib_34, class_tib);
    assert_ne!(tib_34, tib_12);
}

/// Fig. 6: special TIBs belong to the mutable class only; instances of a
/// subclass never have their TIB flipped even when they store matching
/// values into the inherited state field.
#[test]
fn subclass_instances_are_never_mutated() {
    let mut pb = ProgramBuilder::new();
    let base = pb.class("B").build();
    let st = pb.instance_field(base, "st", Ty::Int);
    pb.trivial_ctor(base);
    let mut m = pb.method(base, "set", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    m.put_field(this, st, v);
    m.ret(None);
    m.build();
    let mut m = pb.method(base, "get", MethodSig::new(vec![], Some(Ty::Int)));
    let this = m.this();
    let r = m.reg();
    m.get_field(r, this, st);
    m.ret(Some(r));
    let get = m.build();
    let sub = pb.class("Sub").extends(base).build();
    pb.trivial_ctor(sub);
    let mut m = pb.static_method(base, "mk_sub", MethodSig::new(vec![], Some(Ty::Ref(sub))));
    let o = m.reg();
    m.new_init(o, sub, vec![]);
    m.ret(Some(o));
    let mk_sub = m.build();
    let mut m = pb.static_method(base, "setv", MethodSig::new(vec![Ty::Ref(base), Ty::Int], None));
    let o = m.param(0);
    let v = m.param(1);
    m.call_virtual(None, o, "set", vec![v]);
    m.ret(None);
    let setv = m.build();
    let p = pb.finish().unwrap();

    let plan = MutationPlan {
        classes: vec![MutableClass {
            class: base,
            instance_state_fields: vec![st],
            static_state_fields: vec![],
            hot_states: vec![HotState {
                instance_values: vec![(st, Value::Int(5))],
                static_values: vec![],
                frequency: 1.0,
            }],
            mutable_methods: vec![get],
            field_scores: vec![],
        }],
        mutation_level: 2,
        k: 0,
        emit_guards: true,
    };
    let engine = MutationEngine::new(plan, OlcReport::default());
    let mut vm = engine.attach(p, fast());
    let obj = vm.call_static(mk_sub, &[]).unwrap().unwrap();
    let Value::Ref(oref) = obj else { panic!() };
    vm.state.add_handle(oref);
    let sub_tib = vm.state.heap.object(oref).tib;

    vm.call_static(setv, &[obj, Value::Int(5)]).unwrap();
    assert_eq!(
        vm.state.heap.object(oref).tib, sub_tib,
        "subclass instance must keep its own class TIB (Fig. 6)"
    );
    assert_eq!(vm.stats().tib_flips, 0);
}
