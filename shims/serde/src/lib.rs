//! Minimal, offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small subset of serde it actually uses: a pair
//! of JSON-oriented traits ([`Serialize`], [`Deserialize`]), a JSON document
//! model ([`Value`]), and derive macros re-exported from `serde_derive`.
//!
//! The derives cover exactly the shapes this repository serializes: structs
//! with named fields, tuple/newtype structs, and enums with unit, tuple and
//! struct variants, using serde's externally-tagged enum encoding. No
//! `#[serde(...)]` attributes are supported (none are used in-tree).

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON document. Object keys keep insertion order so output is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (JSON numbers without a fraction or exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// Support routines used by the generated derive code. Not a public API.
pub mod helpers {
    use super::{Error, Value};

    /// Looks up a named field in an object value.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// Looks up a positional element in an array value.
    pub fn index(v: &Value, i: usize) -> Result<&Value, Error> {
        match v {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error::msg(format!("missing tuple element {i}"))),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }

    /// Splits an externally-tagged enum value `{"Variant": payload}` into
    /// its tag and payload.
    pub fn variant(v: &Value) -> Result<(&str, &Value), Error> {
        match v {
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), &fields[0].1))
            }
            other => Err(Error::msg(format!(
                "expected single-key enum object, found {other:?}"
            ))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range"))),
                    other => Err(Error::msg(format!("expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            // `1.0` prints as `1`, which parses back as an integer.
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of {N} elements, found {n}")))
    }
}

// A `Value` serializes as itself, so pre-built JSON documents can be passed
// straight to `serde_json::to_string`.
impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_json_value(helpers::index(v, $n)?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// Maps are encoded as arrays of `[key, value]` pairs so non-string keys
// (e.g. newtype ids) round-trip without a string conversion. Entries are
// sorted by their serialized key for deterministic output.
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
            .collect();
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| {
                    Ok((
                        K::from_json_value(helpers::index(pair, 0)?)?,
                        V::from_json_value(helpers::index(pair, 1)?)?,
                    ))
                })
                .collect(),
            other => Err(Error::msg(format!("expected map array, found {other:?}"))),
        }
    }
}
