//! Minimal, offline stand-in for the `serde_json` crate: a JSON writer and
//! recursive-descent parser over the vendored serde shim's [`Value`] model.
//!
//! Supports exactly what the repository uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`]. Numbers are written with Rust's
//! shortest-round-trip formatting; integers and floats round-trip losslessly
//! for the value ranges the repo serializes.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Result alias matching the real crate's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
///
/// # Errors
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_json_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, '[', ']', |out, item, ind, d| {
                write_value(out, item, ind, d);
            });
        }
        Value::Object(fields) => {
            write_seq(out, fields.iter(), indent, depth, '{', '}', |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            });
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b => {
                    // Re-scan as UTF-8 from the byte before `pos`.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                        let text = std::str::from_utf8(chunk)
                            .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                        s.push_str(text);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                // Fall back to float for out-of-range integers.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::msg(format!("bad number `{text}`"))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        // Whole floats print without a fraction and come back via the Int path.
        assert_eq!(to_string(&1.0f64).unwrap(), "1");
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(String::from("a\n\"x"), 1i64), (String::from("ü"), -2)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, i64)> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("5 x").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }
}
