//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! shim.
//!
//! The offline build environment has no `syn`/`quote`, so the input item is
//! parsed directly from the `proc_macro::TokenStream` and the generated
//! impls are emitted as source strings. Supported shapes (the only ones used
//! in-tree): non-generic structs with named fields, tuple/newtype structs,
//! unit structs, and enums whose variants are unit, tuple or struct-like.
//! Enums use serde's externally-tagged encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    item: Item,
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // `#` followed by the bracketed group
        } else if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        } else {
            return i;
        }
    }
}

/// Splits a field list on commas that sit outside both `<...>` and nested
/// groups (groups are single opaque tokens at this level, so only angle
/// brackets need tracking).
fn count_top_level_segments(toks: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut in_segment = false;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                in_segment = false;
                continue;
            }
            _ => {}
        }
        if !in_segment {
            segments += 1;
            in_segment = true;
        }
    }
    segments
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde shim derive: expected field name, found {:?}", toks[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(is_punct(&toks[i], ':'), "serde shim derive: expected `:`");
        i += 1;
        // Consume the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde shim derive: expected variant name, found {:?}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Shape::Tuple(count_top_level_segments(&fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(named)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        if i < toks.len() {
            assert!(
                is_punct(&toks[i], ','),
                "serde shim derive: expected `,` after variant (discriminants unsupported)"
            );
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde shim derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde shim derive: generic types are not supported");
    }
    let item = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Struct(Shape::Tuple(count_top_level_segments(&fields)))
            }
            _ => Item::Struct(Shape::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Input { name, item }
}

const STR: &str = "::std::string::String::from";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.item {
        Item::Struct(Shape::Unit) => {
            body.push_str("::serde::Value::Null");
        }
        Item::Struct(Shape::Tuple(1)) => {
            body.push_str("::serde::Serialize::to_json_value(&self.0)");
        }
        Item::Struct(Shape::Tuple(n)) => {
            body.push_str("::serde::Value::Array(::std::vec![");
            for k in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_json_value(&self.{k}),");
            }
            body.push_str("])");
        }
        Item::Struct(Shape::Named(fields)) => {
            body.push_str("::serde::Value::Object(::std::vec![");
            for f in fields {
                let _ = write!(
                    body,
                    "({STR}(\"{f}\"), ::serde::Serialize::to_json_value(&self.{f})),"
                );
            }
            body.push_str("])");
        }
        Item::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{vn} => ::serde::Value::Str({STR}(\"{vn}\")),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                        };
                        let _ = write!(
                            body,
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![({STR}(\"{vn}\"), {payload})]),",
                            binds.join(",")
                        );
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({STR}(\"{f}\"), ::serde::Serialize::to_json_value({f}))")
                            })
                            .collect();
                        let _ = write!(
                            body,
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![({STR}(\"{vn}\"), ::serde::Value::Object(::std::vec![{}]))]),",
                            fields.join(","),
                            items.join(",")
                        );
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_json_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    let ok = "::std::result::Result::Ok";
    let err = "::std::result::Result::Err";
    match &input.item {
        Item::Struct(Shape::Unit) => {
            let _ = write!(body, "{ok}({name})");
        }
        Item::Struct(Shape::Tuple(1)) => {
            let _ = write!(
                body,
                "{ok}({name}(::serde::Deserialize::from_json_value(__v)?))"
            );
        }
        Item::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_json_value(::serde::helpers::index(__v, {k})?)?"
                    )
                })
                .collect();
            let _ = write!(body, "{ok}({name}({}))", items.join(","));
        }
        Item::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(::serde::helpers::field(__v, \"{f}\")?)?"
                    )
                })
                .collect();
            let _ = write!(body, "{ok}({name} {{ {} }})", items.join(","));
        }
        Item::Enum(variants) => {
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .collect();
            if !units.is_empty() {
                body.push_str("if let ::serde::Value::Str(__s) = __v { return match __s.as_str() {");
                for v in &units {
                    let _ = write!(body, "\"{0}\" => {ok}({name}::{0}),", v.name);
                }
                let _ = write!(
                    body,
                    "__other => {err}(::serde::Error::msg(::std::format!(\
                         \"unknown variant `{{__other}}` for {name}\"))), }}; }}"
                );
            }
            body.push_str("let (__tag, __payload) = ::serde::helpers::variant(__v)?;");
            body.push_str("match __tag {");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => {
                        let _ = write!(
                            body,
                            "\"{vn}\" => {ok}({name}::{vn}(::serde::Deserialize::from_json_value(__payload)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_json_value(::serde::helpers::index(__payload, {k})?)?"
                                )
                            })
                            .collect();
                        let _ = write!(body, "\"{vn}\" => {ok}({name}::{vn}({})),", items.join(","));
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_json_value(::serde::helpers::field(__payload, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            body,
                            "\"{vn}\" => {ok}({name}::{vn} {{ {} }}),",
                            items.join(",")
                        );
                    }
                }
            }
            let _ = write!(
                body,
                "__other => {err}(::serde::Error::msg(::std::format!(\
                     \"unknown variant `{{__other}}` for {name}\"))), }}"
            );
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
