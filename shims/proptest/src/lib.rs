//! Minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim reimplements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`, range
//! and tuple strategies, [`Just`], `prop_oneof!`, `prop::collection::vec`,
//! the `proptest!` test macro and `prop_assert*`.
//!
//! Differences from real proptest: generation is driven by a fixed-seed
//! splitmix64 RNG (cases are deterministic across runs, keyed on the test
//! name), and failing cases are not shrunk — the `prop_assert*` macros
//! panic with the standard assertion message instead.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator. `Value` is the type of generated values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` expands
    /// an inner strategy into a branch case. `depth` bounds the recursion;
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = f(cur).boxed();
            cur = OneOf {
                options: vec![leaf.clone(), branch],
            }
            .boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates a choice over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Generates `Vec`s with lengths drawn from `len` and elements
        /// from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + if span == 0 { 0 } else { rng.below(span) as usize };
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body (no shrinking: panics
/// immediately like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (-8i64..9).generate(&mut rng);
            assert!((-8..9).contains(&v));
            let u = (0usize..4).generate(&mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::TestRng::deterministic("arms");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)] // value only matters via Debug in failure output
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 6, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::deterministic("trees");
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(a in 1i64..5, items in prop::collection::vec(0u8..3, 1..4)) {
            prop_assert!((1..5).contains(&a));
            prop_assert_eq!(items.is_empty(), false);
        }
    }
}
