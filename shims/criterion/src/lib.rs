//! Minimal, offline stand-in for the `criterion` crate.
//!
//! Provides real wall-clock measurement with the same API shape the
//! workspace's benches use (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`), without the statistics engine, plotting or CLI of the
//! real crate. Each benchmark reports the mean and best per-iteration time
//! over a number of timed samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value. Re-exported so benches
/// can use either `criterion::black_box` or `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement: Duration,
    default_warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement: Duration::from_secs(2),
            default_warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement: self.default_measurement,
            warmup: self.default_warmup,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.default_sample_size;
        let measurement = self.default_measurement;
        let warmup = self.default_warmup;
        run_benchmark(&id.into().label, sample_size, measurement, warmup, f);
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.measurement, self.warmup, f);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (one timed sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
    mut f: F,
) {
    // Warm up and calibrate: run single iterations until the warm-up budget
    // is spent, tracking the observed per-iteration time.
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::ZERO;
    let mut warm_iters: u32 = 0;
    while warm_start.elapsed() < warmup || warm_iters == 0 {
        f(&mut one);
        per_iter += one.elapsed;
        warm_iters += 1;
    }
    per_iter /= warm_iters;

    // Split the measurement budget into `sample_size` samples.
    let per_sample = measurement / sample_size as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    for _ in 0..sample_size {
        f(&mut b);
        total += b.elapsed;
        let mean_this_sample = b.elapsed / iters as u32;
        if mean_this_sample < best {
            best = mean_this_sample;
        }
    }
    let mean = total / (sample_size as u32 * iters as u32).max(1);
    println!(
        "{label:<40} time: [mean {} / best {}] ({} samples x {} iters)",
        fmt_duration(mean),
        fmt_duration(best),
        sample_size,
        iters
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(20));
        g.warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(ran > 0);
    }
}
