#![warn(missing_docs)]

//! Offline shim for the slice of `rayon` the batched compiler uses:
//! [`scope`], [`Scope::spawn`], [`join`] and [`current_num_threads`].
//!
//! The build environment has no crates.io access, so this maps the API onto
//! `std::thread::scope`. Two deliberate divergences from real rayon:
//!
//! * there is no work-stealing pool — every `spawn` is an OS thread, so
//!   callers should spawn a few long-lived workers that pull from a shared
//!   queue rather than one task per item (which is what the VM's batch
//!   compiler does anyway);
//! * `Scope` carries the extra `'env` lifetime `std::thread::scope`
//!   requires; rayon's single-lifetime `Scope<'scope>` is strictly more
//!   permissive, so code written against this shim also compiles against
//!   real rayon, not necessarily vice versa.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel section may profitably use
/// (`std::thread::available_parallelism`, 1 when unknown).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scope handle that can spawn borrowing tasks; all tasks are joined
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope. The task
    /// receives a scope handle so it can spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `op` with a scope whose spawned tasks may borrow local state; every
/// task completes before `scope` returns.
///
/// # Panics
/// Propagates panics from spawned tasks, like `std::thread::scope`.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join: task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::Relaxed);
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn at_least_one_thread() {
        assert!(current_num_threads() >= 1);
    }
}
