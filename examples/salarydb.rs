//! The paper's Figure 2 microbenchmark, end to end: runs SalaryDB with and
//! without dynamic class hierarchy mutation and reports the headline
//! speedup (the paper measures 31.4%).
//!
//! ```text
//! cargo run --release --example salarydb
//! ```

use dchm::core::pipeline::{prepare, PipelineConfig};
use dchm::workloads::{salarydb, Scale};

fn main() {
    let w = salarydb::build(Scale::Full);
    let cfg = PipelineConfig {
        profile_vm: w.vm_config(),
        ..Default::default()
    };
    let wl = w.clone();
    let prepared = prepare(w.program.clone(), &cfg, move |vm| {
        wl.run(vm).unwrap();
    });

    // Show what the analysis discovered.
    let sal = w.program.class_by_name("SalaryEmployee").unwrap();
    let mc = prepared.plan.class(sal).expect("SalaryEmployee is mutable");
    println!("SalaryEmployee hot states (paper: grades 0..3):");
    for st in &mc.hot_states {
        let (field, value) = st.instance_values[0];
        println!(
            "  {} = {value}   (frequency {:.0}%)",
            w.program.field(field).name,
            st.frequency * 100.0
        );
    }

    let mut base = prepared.make_baseline_vm(w.vm_config());
    w.run(&mut base).unwrap();
    let mut mutated = prepared.make_vm(w.vm_config());
    w.run(&mut mutated).unwrap();
    assert_eq!(base.state.output.checksum, mutated.state.output.checksum);

    let b = base.cycles() as f64;
    let m = mutated.cycles() as f64;
    println!("baseline: {b:>14.0} cycles");
    println!("mutated:  {m:>14.0} cycles");
    println!("speedup:  {:+.1}%  (paper: +31.4%)", (b / m - 1.0) * 100.0);
}
