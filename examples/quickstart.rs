//! Quickstart: build a tiny Java-like program, run it on the VM, then run
//! it again with dynamic class hierarchy mutation and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dchm::bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};
use dchm::core::pipeline::{prepare, PipelineConfig};
use dchm::vm::VmConfig;

fn main() {
    // A `Task` whose `run()` behaves differently per `priority` — the
    // stateful-class pattern the paper targets.
    let mut pb = ProgramBuilder::new();
    let task = pb.class("Task").build();
    let priority = pb.private_field(task, "priority", Ty::Int);
    let mut m = pb.ctor(task, vec![Ty::Int]);
    let this = m.this();
    let p = m.param(0);
    m.put_field(this, priority, p);
    m.ret(None);
    m.build();

    // int run(int work): urgent tasks take the fast path.
    let mut m = pb.method(task, "run", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let this = m.this();
    let work = m.param(0);
    let pr = m.reg();
    m.get_field(pr, this, priority);
    let slow = m.label();
    let out = m.reg();
    m.br_icmp_imm(CmpOp::Ne, pr, 0, slow);
    let two = m.imm(2);
    m.imul(out, work, two);
    m.ret(Some(out));
    m.bind(slow);
    let three = m.imm(3);
    m.imul(out, work, three);
    m.iadd_imm(out, out, 7);
    m.ret(Some(out));
    m.build();

    // main: hammer an urgent task.
    let mut m = pb.static_method(task, "main", MethodSig::void());
    let t = m.reg();
    let zero = m.imm(0);
    m.new_init(t, task, vec![zero]);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    let lim = m.imm(200_000);
    m.br_icmp(CmpOp::Ge, i, lim, done);
    let r = m.reg();
    m.call_virtual(Some(r), t, "run", vec![i]);
    m.sink_int(r);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    let program = pb.finish().expect("program verifies");

    // Offline pipeline: profile, find state fields (EQ 1), derive hot
    // states, build the mutation plan.
    let prepared = prepare(program, &PipelineConfig::default(), |vm| {
        vm.run_entry().unwrap();
    });
    println!("mutation plan: {} mutable class(es)", prepared.plan.classes.len());
    for mc in &prepared.plan.classes {
        println!(
            "  class {} with {} hot state(s)",
            prepared.program.class(mc.class).name,
            mc.hot_states.len()
        );
    }

    // Baseline.
    let mut base = prepared.make_baseline_vm(VmConfig::default());
    base.run_entry().unwrap();

    // With dynamic class hierarchy mutation.
    let mut mutated = prepared.make_vm(VmConfig::default());
    mutated.run_entry().unwrap();

    assert_eq!(
        base.state.output.checksum, mutated.state.output.checksum,
        "mutation must preserve behaviour"
    );
    let b = base.state.stats.exec_cycles;
    let m = mutated.state.stats.exec_cycles;
    println!("baseline exec cycles: {b}");
    println!("mutated  exec cycles: {m}");
    println!("speedup: {:+.1}%", (b as f64 / m as f64 - 1.0) * 100.0);
    println!(
        "special TIBs created: {}, object TIB flips: {}",
        mutated.stats().special_tibs,
        mutated.stats().tib_flips
    );
}
