//! Regenerates the golden cycle fingerprints asserted by
//! `tests/determinism.rs`.
//!
//! The evaluator's cycle cost model must be independent of host-side
//! interpreter optimizations: `clock`, `ops_executed` and the per-method
//! cycle/invocation profile are part of the reproduction's observable
//! results. This tool prints one fingerprint row per (workload, mutation
//! on/off) pair at `Scale::Small`; paste its output into the `GOLDEN` table
//! in `tests/determinism.rs` whenever the *cost model itself* changes
//! intentionally. A diff that was not meant to change the model must leave
//! these values bit-identical.
//!
//! Run with: `cargo run --release --example golden_cycles`

use dchm::determinism::{fingerprint_all, Fingerprint};

fn main() {
    let rows: Vec<(String, Fingerprint)> = fingerprint_all();
    println!("const GOLDEN: &[(&str, Fingerprint)] = &[");
    for (label, fp) in rows {
        println!(
            "    (\"{label}\", Fingerprint {{ clock: {}, ops_executed: {}, per_method_hash: 0x{:016x} }}),",
            fp.clock, fp.ops_executed, fp.per_method_hash
        );
    }
    println!("];");
}
