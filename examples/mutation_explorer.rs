//! Mutation explorer: shows the machinery at work for one benchmark —
//! the EQ 1 field scores, the plan, the object-lifetime constants, and the
//! general vs specialized IR of a mutable method (the paper's Figure 2(b)
//! "mutated versions", generated automatically).
//!
//! ```text
//! cargo run --release --example mutation_explorer -- SalaryDB
//! ```

use dchm::bytecode::Value;
use dchm::core::analysis::{find_state_fields, AnalysisConfig};
use dchm::core::pipeline::{prepare, PipelineConfig};
use dchm::ir::passes::{run_pipeline, specialize, Bindings, OptConfig};
use dchm::ir::lift;
use dchm::profile::profile_hot_methods;
use dchm::workloads::{catalog, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SalaryDB".into());
    let Some(w) = catalog(Scale::Small).into_iter().find(|w| w.name == name) else {
        eprintln!("unknown benchmark {name}; try one of the Table 1 names");
        std::process::exit(2);
    };
    let p = &w.program;

    // EQ 1 scores.
    let wl = w.clone();
    let hot = profile_hot_methods(p.clone(), w.vm_config(), move |vm| {
        wl.run(vm).unwrap();
    });
    println!("== EQ 1 state-field scores ==");
    for fs in find_state_fields(p, &hot, &AnalysisConfig::default()) {
        let fd = p.field(fs.field);
        println!(
            "  V = {:>8.4}   {}.{}{}",
            fs.score,
            p.class(fd.owner).name,
            fd.name,
            if fd.is_static { " (static)" } else { "" }
        );
    }

    // The plan.
    let cfg = PipelineConfig {
        profile_vm: w.vm_config(),
        ..Default::default()
    };
    let wl = w.clone();
    let prepared = prepare(p.clone(), &cfg, move |vm| {
        wl.run(vm).unwrap();
    });
    println!("\n== mutation plan ==");
    println!("{}", prepared.plan.to_json().unwrap());
    if !prepared.olc.is_empty() {
        println!("== object lifetime constants ==");
        for (f, info) in &prepared.olc.infos {
            println!(
                "  via {}.{} -> exact {} with {} constant field(s)",
                p.class(p.field(*f).owner).name,
                p.field(*f).name,
                p.class(info.exact_class).name,
                info.bindings.len()
            );
        }
    }

    // General vs specialized IR of the first mutable method / hot state.
    let Some(mc) = prepared.plan.classes.first() else {
        println!("no mutable classes found");
        return;
    };
    let Some(&mid) = mc.mutable_methods.first() else {
        return;
    };
    let md = p.method(mid);
    println!(
        "\n== {}::{} — general (opt2) ==",
        p.class(md.owner).name,
        md.name
    );
    let mut general = lift(&md.code, md.num_regs, md.arg_count() as u16);
    run_pipeline(&mut general, &OptConfig::level(2));
    println!("{general}");

    if let Some(state) = mc.hot_states.first() {
        let bind = Bindings {
            instance: state.instance_values.iter().copied().collect(),
            statics: state.static_values.iter().copied().collect(),
        };
        let describe = |vals: &[(dchm::bytecode::FieldId, Value)]| {
            vals.iter()
                .map(|(f, v)| format!("{}={v}", p.field(*f).name))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "== specialized for hot state [{}{}] ==",
            describe(&state.instance_values),
            describe(&state.static_values),
        );
        let mut special = lift(&md.code, md.num_regs, md.arg_count() as u16);
        specialize(&mut special, &bind);
        run_pipeline(&mut special, &OptConfig::level(2));
        println!("{special}");
        println!(
            "size: general {} ops -> specialized {} ops",
            general.size(),
            special.size()
        );
    }
}
