//! Online dynamic class hierarchy mutation — the paper's future work
//! (Sec. 9), running end to end: one VM profiles itself, picks state
//! fields with EQ 1, samples their values, builds the plan and installs the
//! mutation engine **between SPECjbb warehouses**, without restarting.
//!
//! ```text
//! cargo run --release --example online_mutation
//! ```

use dchm::core::analysis::AnalysisConfig;
use dchm::core::online::OnlineSession;
use dchm::bytecode::Value;
use dchm::workloads::{jbb, Driver, Scale};

fn main() {
    let w = jbb::build(jbb::JbbVariant::Jbb2000, Scale::Full);
    let Driver::Warehouse { setup, run, txns, warehouses } = w.driver else {
        unreachable!()
    };
    let mut cfg = w.vm_config();
    cfg.sample_period = 15_000;

    let mut s = OnlineSession::new(w.program.clone(), cfg, AnalysisConfig::default());
    println!("phase: {:?}", s.phase());
    s.vm_mut().call_static(setup, &[]).unwrap();

    let mut per_wh = Vec::new();
    for wh in 0..warehouses {
        // Phase transitions between warehouses, like a production JVM.
        if wh == 1 {
            let candidates = s.begin_value_sampling();
            println!("after wh1: value sampling on {candidates} candidate field(s)");
        }
        if wh == 2 {
            let classes = s.install_mutation();
            println!("after wh2: mutation installed — {classes} mutable class(es)");
            for mc in &s.plan().unwrap().classes {
                println!(
                    "    {} ({} hot states)",
                    w.program.class(mc.class).name,
                    mc.hot_states.len()
                );
            }
        }
        let before = s.vm().cycles();
        s.vm_mut().call_static(run, &[Value::Int(txns)]).unwrap();
        let cycles = s.vm().cycles() - before;
        per_wh.push(cycles);
        println!(
            "wh{:<2} {:>12} cycles   ({:?})",
            wh + 1,
            cycles,
            s.phase()
        );
    }

    let pre: f64 = per_wh[0] as f64;
    let post: f64 = per_wh[warehouses - 1] as f64;
    println!(
        "\nfirst warehouse vs last: {:+.1}% throughput (same process, mutated mid-run)",
        (pre / post - 1.0) * 100.0
    );
    println!(
        "special TIBs: {}, TIB flips: {}, specials compiled: {}",
        s.vm().stats().special_tibs,
        s.vm().stats().tib_flips,
        s.vm().stats().special_compiles
    );
}
