//! Write a stateful program in dchm assembly text, run it through the full
//! mutation pipeline, and watch the class hierarchy mutate.
//!
//! ```text
//! cargo run --release --example assembler
//! ```

use dchm::bytecode::assemble;
use dchm::core::pipeline::{prepare, PipelineConfig};
use dchm::vm::VmConfig;

const SOURCE: &str = r#"
; A traffic light controller: the light's phase is a state field with three
; hot values; tick() branches on it for every vehicle.
.class Light
.field phase int private
.ctor (int)
  putfield r0, Light.phase, r1
  ret
.end_method
.method advance void (int)
  putfield r0, Light.phase, r1
  ret
.end_method
.method tick int (int)
  getfield r2, r0, Light.phase
  consti r3, 0
  icmp eq, r4, r2, r3
  brif r4, Lgreen
  consti r3, 1
  icmp eq, r4, r2, r3
  brif r4, Lyellow
  ; red: nobody moves
  consti r5, 0
  ret r5
Lgreen:
  consti r6, 3
  imul r5, r1, r6
  ret r5
Lyellow:
  consti r6, 1
  iand r5, r1, r6
  ret r5
.end_method
.end

.class Sim
.smethod main void ()
  new r0, Light
  consti r1, 0
  callctor r0, Light, r1
  consti r2, 0          ; i
  consti r3, 0          ; moved
Lloop:
  consti r4, 120000
  icmp ge, r5, r2, r4
  brif r5, Ldone
  ; cycle the phase every 4000 vehicles
  consti r6, 4000
  irem r7, r2, r6
  consti r8, 0
  icmp eq, r9, r7, r8
  brif r9, Lswitch
Lafter:
  callvirtual r10, r0, tick, r2
  iadd r3, r3, r10
  consti r11, 1
  iadd r2, r2, r11
  jmp Lloop
Lswitch:
  consti r12, 12000
  idiv r13, r2, r12
  consti r14, 3
  irem r13, r13, r14
  callvirtual_v r0, advance, r13
  jmp Lafter
Ldone:
  sinkint r3
  ret
.end_method
.end
.entry Sim.main
"#;

fn main() {
    let program = assemble(SOURCE).expect("assembles and verifies");
    println!(
        "assembled {} classes / {} methods",
        program.classes.len(),
        program.methods.len()
    );

    let prepared = prepare(program, &PipelineConfig::default(), |vm| {
        vm.run_entry().unwrap();
    });
    for mc in &prepared.plan.classes {
        println!(
            "mutable class {} with {} hot state(s): {:?}",
            prepared.program.class(mc.class).name,
            mc.hot_states.len(),
            mc.hot_states
                .iter()
                .map(|s| s.instance_values[0].1)
                .collect::<Vec<_>>()
        );
    }

    let mut base = prepared.make_baseline_vm(VmConfig::default());
    base.run_entry().unwrap();
    let mut mutated = prepared.make_vm(VmConfig::default());
    mutated.run_entry().unwrap();
    assert_eq!(base.state.output.checksum, mutated.state.output.checksum);
    let b = base.state.stats.exec_cycles as f64;
    let m = mutated.state.stats.exec_cycles as f64;
    println!(
        "baseline {b:.0} cycles, mutated {m:.0} cycles: {:+.1}%",
        (b / m - 1.0) * 100.0
    );
    println!(
        "TIB flips: {} (the light re-classes itself at every phase change)",
        mutated.stats().tib_flips
    );
}
