//! SPECjbb-style throughput-over-warehouses curves (the paper's
//! Figures 13 and 15): runs each warehouse interval with and without
//! mutation and prints the per-warehouse throughput delta.
//!
//! ```text
//! cargo run --release --example jbb_throughput          # SPECjbb2000
//! cargo run --release --example jbb_throughput -- 2005  # SPECjbb2005
//! ```

use dchm::core::pipeline::{prepare, PipelineConfig};
use dchm::workloads::{jbb, Scale};

fn main() {
    let variant = if std::env::args().any(|a| a == "2005") {
        jbb::JbbVariant::Jbb2005
    } else {
        jbb::JbbVariant::Jbb2000
    };
    let w = jbb::build(variant, Scale::Full);
    println!("running {} ...", w.name);

    let cfg = PipelineConfig {
        profile_vm: w.vm_config(),
        ..Default::default()
    };
    let wl = w.clone();
    let prepared = prepare(w.program.clone(), &cfg, move |vm| {
        wl.run(vm).unwrap();
    });

    let mut run_cfg = w.vm_config();
    run_cfg.sample_period = 60_000;
    let mut base = prepared.make_baseline_vm(run_cfg.clone());
    let base_runs = w.run_warehouses(&mut base).unwrap();
    let mut mutated = prepared.make_vm(run_cfg);
    let mut_runs = w.run_warehouses(&mut mutated).unwrap();
    assert_eq!(base.state.output.checksum, mutated.state.output.checksum);

    println!("{:>4} {:>14} {:>14} {:>8}", "wh", "base tx/s", "mutated tx/s", "delta");
    for (i, (b, m)) in base_runs.iter().zip(&mut_runs).enumerate() {
        let tb = b.throughput();
        let tm = m.throughput();
        println!(
            "{:>4} {:>14.0} {:>14.0} {:>+7.1}%",
            i + 1,
            tb,
            tm,
            (tm / tb - 1.0) * 100.0
        );
    }
    let half = base_runs.len() / 2;
    let sb: f64 = base_runs[half..].iter().map(|r| r.throughput()).sum();
    let sm: f64 = mut_runs[half..].iter().map(|r| r.throughput()).sum();
    println!(
        "steady-state improvement: {:+.1}%  (paper: {} ~{}%)",
        (sm / sb - 1.0) * 100.0,
        w.name,
        if variant == jbb::JbbVariant::Jbb2000 { "4.5" } else { "1.9" },
    );
}
