//! Persistence round-trips: linked programs (serde) and mutation plans
//! (JSON) survive serialization with identical observable behaviour —
//! the storage path a deployment of this system would use.

use dchm::vm::{Vm, VmConfig};
use dchm::workloads::{salarydb, Scale};

#[test]
fn program_survives_serde_roundtrip() {
    let w = salarydb::build(Scale::Small);
    let json = serde_json::to_string(&w.program).expect("programs serialize");
    let back: dchm::bytecode::Program = serde_json::from_str(&json).expect("deserialize");

    let mut vm1 = Vm::new(w.program.clone(), VmConfig::default());
    w.run(&mut vm1).unwrap();
    let mut vm2 = Vm::new(back, VmConfig::default());
    vm2.run_entry().unwrap();
    assert_eq!(vm1.state.output.checksum, vm2.state.output.checksum);
}

#[test]
fn plan_roundtrips_and_drives_a_fresh_vm() {
    use dchm::core::pipeline::{prepare, PipelineConfig};
    use dchm::core::{MutationEngine, MutationPlan};

    let w = salarydb::build(Scale::Small);
    let mut cfg = PipelineConfig::default();
    cfg.profile_vm.sample_period = 10_000;
    let prepared = prepare(w.program.clone(), &cfg, |vm| {
        vm.run_entry().unwrap();
    });

    // Serialize the plan (the "fed into the JVM at startup" artifact) and
    // rebuild an engine in a fresh process-equivalent.
    let json = prepared.plan.to_json().unwrap();
    let plan = MutationPlan::from_json(&json).unwrap();
    assert_eq!(plan, prepared.plan);

    let engine = MutationEngine::new(plan, prepared.olc.clone());
    let run_cfg = VmConfig {
        sample_period: 10_000,
        ..Default::default()
    };
    let mut vm = engine.attach(w.program.clone(), run_cfg.clone());
    w.run(&mut vm).unwrap();

    let mut base = Vm::new(w.program.clone(), run_cfg);
    w.run(&mut base).unwrap();
    assert_eq!(vm.state.output.checksum, base.state.output.checksum);
    assert!(vm.stats().special_tibs >= 4);
}

#[test]
fn asm_text_is_a_full_persistence_format() {
    // print_asm + assemble: a second storage path, human-readable.
    let w = salarydb::build(Scale::Small);
    let text = dchm::bytecode::print_asm(&w.program);
    let back = dchm::bytecode::assemble(&text)
        .unwrap_or_else(|e| panic!("round-trip failed: {e}"));

    let mut vm1 = Vm::new(w.program.clone(), VmConfig::default());
    w.run(&mut vm1).unwrap();
    let mut vm2 = Vm::new(back, VmConfig::default());
    vm2.run_entry().unwrap();
    assert_eq!(
        vm1.state.output.checksum, vm2.state.output.checksum,
        "assembly text round-trip changed behaviour"
    );
}
