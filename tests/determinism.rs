//! The evaluator fast path (cursor interpreter, pooled register windows,
//! inline caches, per-block cost prefix sums) must not change modeled
//! cycles by a single tick. These goldens were recorded from the seed
//! (pre-optimization) evaluator; every workload is checked with mutation
//! off and on.
//!
//! If a change to the *cost model itself* is intended, regenerate with
//! `cargo run --release --example golden_cycles` and paste the new table —
//! but a host-side evaluator change must never need that.

use dchm::determinism::{fingerprint_all, Fingerprint};

const GOLDEN: &[(&str, Fingerprint)] = &[
    (
        "SalaryDB/base",
        Fingerprint {
            clock: 241491,
            ops_executed: 55329,
            per_method_hash: 0x55dedf76ffa08d5d,
        },
    ),
    (
        "SalaryDB/mutated",
        Fingerprint {
            clock: 314683,
            ops_executed: 48201,
            per_method_hash: 0xa1816d8eee908511,
        },
    ),
    (
        "SimLogic/base",
        Fingerprint {
            clock: 140981,
            ops_executed: 41114,
            per_method_hash: 0xbdaa9406ccc3c23c,
        },
    ),
    (
        "SimLogic/mutated",
        Fingerprint {
            clock: 199341,
            ops_executed: 41162,
            per_method_hash: 0xf644ef36835e0eac,
        },
    ),
    (
        "CSVToXML/base",
        Fingerprint {
            clock: 358113,
            ops_executed: 135533,
            per_method_hash: 0x75f49c2cd53c1183,
        },
    ),
    (
        "CSVToXML/mutated",
        Fingerprint {
            clock: 358410,
            ops_executed: 135536,
            per_method_hash: 0x55021ecf976636a0,
        },
    ),
    (
        "Java2XHTML/base",
        Fingerprint {
            clock: 285603,
            ops_executed: 129887,
            per_method_hash: 0x1757ecf8cc771bfa,
        },
    ),
    (
        "Java2XHTML/mutated",
        Fingerprint {
            clock: 285801,
            ops_executed: 129889,
            per_method_hash: 0x234304b7b95d0568,
        },
    ),
    (
        "Weka/base",
        Fingerprint {
            clock: 250842,
            ops_executed: 62547,
            per_method_hash: 0x20ad371097b933b2,
        },
    ),
    (
        "Weka/mutated",
        Fingerprint {
            clock: 273757,
            ops_executed: 60912,
            per_method_hash: 0x5bb7cc194542be59,
        },
    ),
    (
        "SPECjbb2000/base",
        Fingerprint {
            clock: 857092,
            ops_executed: 143714,
            per_method_hash: 0x0c03073bccf4cb98,
        },
    ),
    (
        "SPECjbb2000/mutated",
        Fingerprint {
            clock: 796711,
            ops_executed: 143793,
            per_method_hash: 0xf173418408591835,
        },
    ),
    (
        "SPECjbb2005/base",
        Fingerprint {
            clock: 1267591,
            ops_executed: 429591,
            per_method_hash: 0xa0a1b3f4c765f310,
        },
    ),
    (
        "SPECjbb2005/mutated",
        Fingerprint {
            clock: 1268386,
            ops_executed: 429664,
            per_method_hash: 0x7ffd304946219c6d,
        },
    ),
];

#[test]
fn cycle_model_matches_pre_optimization_goldens() {
    let rows = fingerprint_all();
    assert_eq!(rows.len(), GOLDEN.len(), "workload catalog changed size");
    for ((name, got), (gname, want)) in rows.iter().zip(GOLDEN) {
        assert_eq!(name, gname, "workload catalog changed order");
        assert_eq!(
            got, want,
            "{name}: modeled cycles drifted from the seed evaluator"
        );
    }
}
