//! Cross-crate integration: text assembly → verifier → VM → full mutation
//! pipeline, proving the whole stack composes from the textual surface.

use dchm::bytecode::assemble;
use dchm::core::pipeline::{prepare, PipelineConfig};
use dchm::vm::{Vm, VmConfig};

const PROGRAM: &str = r#"
.class Account
.field tier int private
.field balance int
.ctor (int)
  putfield r0, Account.tier, r1
  consti r2, 100
  putfield r0, Account.balance, r2
  ret
.end_method
.method fee int (int)
  getfield r2, r0, Account.tier
  consti r3, 0
  icmp eq, r4, r2, r3
  brif r4, Lbasic
  ; premium: flat fee
  consti r5, 1
  ret r5
Lbasic:
  consti r6, 50
  idiv r5, r1, r6
  consti r7, 2
  iadd r5, r5, r7
  ret r5
.end_method
.end

.class Bank
.smethod main void ()
  consti r0, 48
  newarr r1, ref, r0
  consti r2, 0
Lfill:
  icmp ge, r3, r2, r0
  brif r3, Lrun
  consti r4, 4
  irem r5, r2, r4
  consti r6, 0
  icmp eq, r7, r5, r6
  new r8, Account
  callctor r8, Account, r7
  astore r1, r2, r8
  consti r9, 1
  iadd r2, r2, r9
  jmp Lfill
Lrun:
  consti r10, 0       ; round
  consti r11, 0       ; total
Lround:
  consti r12, 400
  icmp ge, r13, r10, r12
  brif r13, Ldone
  consti r14, 0       ; j
Lacct:
  icmp ge, r15, r14, r0
  brif r15, Lnext
  aload r16, r1, r14
  callvirtual r17, r16, fee, r10
  iadd r11, r11, r17
  consti r18, 1
  iadd r14, r14, r18
  jmp Lacct
Lnext:
  consti r19, 1
  iadd r10, r10, r19
  jmp Lround
Ldone:
  sinkint r11
  ret
.end_method
.end
.entry Bank.main
"#;

#[test]
fn assembled_program_goes_through_full_mutation_pipeline() {
    let program = assemble(PROGRAM).expect("assembles");

    let mut cfg = PipelineConfig::default();
    cfg.profile_vm.sample_period = 10_000;
    let prepared = prepare(program.clone(), &cfg, |vm| {
        vm.run_entry().unwrap();
    });

    // `tier` is discovered as a state field with two hot values (75% / 25%).
    let account = program.class_by_name("Account").unwrap();
    let mc = prepared.plan.class(account).expect("Account is mutable");
    let tier = program.field_by_name(account, "tier").unwrap();
    assert_eq!(mc.instance_state_fields, vec![tier]);
    assert_eq!(mc.hot_states.len(), 2);

    let run_cfg = VmConfig {
        sample_period: 10_000,
        ..Default::default()
    };
    let mut base = prepared.make_baseline_vm(run_cfg.clone());
    base.run_entry().unwrap();
    let mut mutated = prepared.make_vm(run_cfg);
    mutated.run_entry().unwrap();
    assert_eq!(base.state.output.checksum, mutated.state.output.checksum);
    assert!(mutated.stats().special_tibs >= 2);
    assert!(
        mutated.state.stats.exec_cycles < base.state.stats.exec_cycles,
        "mutation should pay off on the assembled program"
    );
}

#[test]
fn assembler_and_builder_agree_on_semantics() {
    // The same function written both ways computes the same value.
    let src = r#"
.class M
.smethod f int (int)
  consti r1, 0
  consti r2, 1
Lh:
  icmp le, r3, r0, r1
  brif r3, Ld
  imul r2, r2, r0
  consti r4, 1
  isub r0, r0, r4
  jmp Lh
Ld:
  ret r2
.end_method
.end
"#;
    let p1 = assemble(src).unwrap();
    let m1 = {
        let c = p1.class_by_name("M").unwrap();
        p1.method_by_name(c, "f").unwrap()
    };
    let mut vm1 = Vm::new(p1, VmConfig::default());
    let r1 = vm1
        .call_static(m1, &[dchm::bytecode::Value::Int(10)])
        .unwrap();

    // Builder version of 10!.
    let mut pb = dchm::bytecode::ProgramBuilder::new();
    let c = pb.class("M").build();
    let mut m = pb.static_method(
        c,
        "f",
        dchm::bytecode::MethodSig::new(vec![dchm::bytecode::Ty::Int], Some(dchm::bytecode::Ty::Int)),
    );
    let n = m.param(0);
    let acc = m.reg();
    m.const_i(acc, 1);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp_imm(dchm::bytecode::CmpOp::Le, n, 0, done);
    m.imul(acc, acc, n);
    m.iadd_imm(n, n, -1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let f2 = m.build();
    let p2 = pb.finish().unwrap();
    let mut vm2 = Vm::new(p2, VmConfig::default());
    let r2 = vm2
        .call_static(f2, &[dchm::bytecode::Value::Int(10)])
        .unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1, Some(dchm::bytecode::Value::Int(3_628_800)));
}
