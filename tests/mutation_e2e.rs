//! End-to-end reproduction tests: for every benchmark in the paper's
//! Table 1, the full pipeline (profile → EQ 1 → value sampling → plan →
//! OLC → mutation engine) must
//!
//! 1. preserve observable behaviour exactly, and
//! 2. for the mutation-friendly workloads, reduce execution cycles.

use dchm::core::pipeline::{prepare, PipelineConfig};
use dchm::vm::VmConfig;
use dchm::workloads::{catalog, Scale, Workload};

fn fast_vm_config(w: &Workload) -> VmConfig {
    let mut c = w.vm_config();
    // Small-scale runs need aggressive sampling to reach opt2 in tests.
    c.sample_period = 12_000;
    c.opt1_samples = 2;
    c.opt2_samples = 5;
    c
}

fn prepared_for(w: &Workload) -> dchm::core::pipeline::Prepared {
    let cfg = PipelineConfig {
        profile_vm: fast_vm_config(w),
        ..Default::default()
    };
    let wl = w.clone();
    prepare(w.program.clone(), &cfg, move |vm| {
        wl.run(vm).expect("profiling run");
    })
}

#[test]
fn mutation_preserves_behaviour_on_every_benchmark() {
    for w in catalog(Scale::Small) {
        let prepared = prepared_for(&w);
        let mut base = prepared.make_baseline_vm(fast_vm_config(&w));
        w.run(&mut base).unwrap();
        let mut mutated = prepared.make_vm(fast_vm_config(&w));
        w.run(&mut mutated).unwrap();
        assert_eq!(
            base.state.output.checksum, mutated.state.output.checksum,
            "{}: mutation changed observable behaviour",
            w.name
        );
        assert_eq!(
            base.state.output.text, mutated.state.output.text,
            "{}: mutation changed printed output",
            w.name
        );
    }
}

#[test]
fn every_benchmark_finds_mutable_classes() {
    let expected: &[(&str, &str)] = &[
        ("SalaryDB", "SalaryEmployee"),
        ("SimLogic", "Gate"),
        ("CSVToXML", "Converter"),
        ("Java2XHTML", "Formatter"),
        ("Weka", "Classifier"),
        ("SPECjbb2000", "Customer"),
        ("SPECjbb2005", "Customer"),
    ];
    for w in catalog(Scale::Small) {
        let prepared = prepared_for(&w);
        let want = expected
            .iter()
            .find(|(n, _)| *n == w.name)
            .map(|(_, c)| *c)
            .unwrap();
        let class = w.program.class_by_name(want).unwrap();
        assert!(
            prepared.plan.class(class).is_some(),
            "{}: expected {} to be a mutable class; plan = {:?}",
            w.name,
            want,
            prepared
                .plan
                .classes
                .iter()
                .map(|c| w.program.class(c.class).name.clone())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn salarydb_has_four_hot_states() {
    let w = dchm::workloads::salarydb::build(Scale::Small);
    let prepared = prepared_for(&w);
    let sal = w.program.class_by_name("SalaryEmployee").unwrap();
    let mc = prepared.plan.class(sal).unwrap();
    assert_eq!(mc.hot_states.len(), 4, "{:?}", mc.hot_states);
    let grade = w.program.field_by_name(sal, "grade").unwrap();
    assert_eq!(mc.instance_state_fields, vec![grade]);
}

#[test]
fn jbb_plan_includes_static_state_and_olc() {
    let w = dchm::workloads::jbb::build(dchm::workloads::jbb::JbbVariant::Jbb2000, Scale::Small);
    let prepared = prepared_for(&w);

    // Static state field taxPolicy on some mutable class.
    let company = w.program.class_by_name("Company").unwrap();
    let tax_policy = w.program.field_by_name(company, "taxPolicy").unwrap();
    let has_static_state = prepared
        .plan
        .classes
        .iter()
        .any(|c| c.static_state_fields.contains(&tax_policy));
    assert!(has_static_state, "taxPolicy must be a static state field");

    // Fig. 7: deliveryScreen's rows/cols are object lifetime constants.
    let delivery = w.program.class_by_name("DeliveryTransaction").unwrap();
    let screen_field = w.program.field_by_name(delivery, "deliveryScreen").unwrap();
    let info = prepared
        .olc
        .infos
        .get(&screen_field)
        .expect("deliveryScreen must be an OLC reference");
    let screen = w.program.class_by_name("DisplayScreen").unwrap();
    assert_eq!(info.exact_class, screen);
    let rows = w.program.field_by_name(screen, "rows").unwrap();
    let cols = w.program.field_by_name(screen, "cols").unwrap();
    assert_eq!(info.bindings.get(&rows), Some(&dchm::bytecode::Value::Int(24)));
    assert_eq!(info.bindings.get(&cols), Some(&dchm::bytecode::Value::Int(80)));
}

#[test]
fn salarydb_mutation_speeds_up_execution() {
    let w = dchm::workloads::salarydb::build(Scale::Small);
    let prepared = prepared_for(&w);
    let mut base = prepared.make_baseline_vm(fast_vm_config(&w));
    w.run(&mut base).unwrap();
    let mut mutated = prepared.make_vm(fast_vm_config(&w));
    w.run(&mut mutated).unwrap();
    let b = base.state.stats.exec_cycles as f64;
    let m = mutated.state.stats.exec_cycles as f64;
    assert!(
        m < b,
        "SalaryDB must speed up under mutation: {m} vs {b} ({}%)",
        (b / m - 1.0) * 100.0
    );
    assert!(mutated.stats().special_tibs >= 4);
    assert!(mutated.stats().tib_flips > 0);
}
