//! # dchm — Dynamic Class Hierarchy Mutation
//!
//! Facade crate for the reproduction of *Su & Lipasti, "Dynamic Class
//! Hierarchy Mutation", CGO 2006*. Re-exports the whole stack:
//!
//! * [`bytecode`] — Java-like register bytecode, classes, hierarchy.
//! * [`ir`] — optimizer IR and passes (const-prop, DCE, inlining, specialization).
//! * [`vm`] — the tiered virtual machine (TIBs, JTOC, adaptive system, GC).
//! * [`core`] — the paper's contribution: the dynamic class mutation engine.
//! * [`profile`] — the offline profiling pipeline (hot methods, value sampling).
//! * [`workloads`] — the seven benchmark programs from the paper's Table 1.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

pub use dchm_bytecode as bytecode;
pub use dchm_core as core;
pub use dchm_ir as ir;
pub use dchm_profile as profile;
pub use dchm_vm as vm;
pub use dchm_workloads as workloads;

pub mod determinism;
