//! Cycle-model fingerprinting.
//!
//! The reproduction's results are *modeled* cycle counts, so any host-side
//! change to the evaluator (interpreter fast paths, inline caches, register
//! pooling) must leave them bit-identical. A [`Fingerprint`] condenses one
//! run's observable cost-model state: the final clock, the executed-op
//! count, and an order-sensitive hash over every method's invocation and
//! cycle totals. `tests/determinism.rs` pins these against golden values
//! recorded from the pre-optimization evaluator;
//! `examples/golden_cycles.rs` regenerates the table when the cost model
//! changes on purpose.

use dchm_core::pipeline::{prepare, PipelineConfig};
use dchm_vm::{Vm, VmConfig};
use dchm_workloads::{catalog, Scale, Workload};

/// Condensed cost-model observables of one finished run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Final modeled clock (exec + compile + GC cycles).
    pub clock: u64,
    /// Total ops executed by the evaluator.
    pub ops_executed: u64,
    /// FNV-1a over every method's `(index, invocations, cycles)` triple.
    pub per_method_hash: u64,
}

/// Fingerprints a finished VM.
pub fn fingerprint(vm: &Vm) -> Fingerprint {
    let stats = vm.stats();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (i, m) in stats.per_method.iter().enumerate() {
        mix(i as u64);
        mix(m.invocations);
        mix(m.cycles);
    }
    Fingerprint {
        clock: vm.cycles(),
        ops_executed: stats.ops_executed,
        per_method_hash: h,
    }
}

/// The VM configuration fingerprinted runs use (the bench harness's
/// measured cadence: samples every 15k cycles, opt1 after 3, opt2 after 8).
pub fn fingerprint_config(w: &Workload) -> VmConfig {
    let mut c = w.vm_config();
    c.sample_period = 15_000;
    c.opt1_samples = 3;
    c.opt2_samples = 8;
    c
}

/// Runs `w` with mutation off and fingerprints the result.
pub fn run_baseline(w: &Workload) -> Fingerprint {
    let mut vm = Vm::new(w.program.clone(), fingerprint_config(w));
    w.run(&mut vm).expect("baseline run must not trap");
    fingerprint(&vm)
}

/// Runs `w` through the full profile → plan → mutation pipeline and
/// fingerprints the mutated run.
pub fn run_mutated(w: &Workload) -> Fingerprint {
    let cfg = PipelineConfig {
        profile_vm: fingerprint_config(w),
        ..Default::default()
    };
    let wl = w.clone();
    let prepared = prepare(w.program.clone(), &cfg, move |vm| {
        wl.run(vm).expect("profiling run must not trap");
    });
    let mut vm = prepared.make_vm(fingerprint_config(w));
    w.run(&mut vm).expect("mutated run must not trap");
    fingerprint(&vm)
}

/// Fingerprints all seven workloads at `Scale::Small`, mutation off and on,
/// labeled `"<name>/base"` and `"<name>/mutated"` in catalog order.
pub fn fingerprint_all() -> Vec<(String, Fingerprint)> {
    let mut rows = Vec::new();
    for w in catalog(Scale::Small) {
        rows.push((format!("{}/base", w.name), run_baseline(&w)));
        rows.push((format!("{}/mutated", w.name), run_mutated(&w)));
    }
    rows
}
